"""Unit tests for CoreliteConfig validation."""

import pytest

from repro.core.config import CoreliteConfig, FeedbackScheme
from repro.errors import ConfigurationError


def test_defaults_match_paper_constants():
    cfg = CoreliteConfig()
    assert cfg.k1 == 1.0
    assert cfg.alpha == 1.0
    assert cfg.beta == 1.0
    assert cfg.core_epoch == pytest.approx(0.1)
    assert cfg.qthresh == 8.0
    assert cfg.queue_capacity == 40.0
    assert cfg.ss_thresh == 32.0
    assert cfg.feedback_scheme is FeedbackScheme.SELECTIVE


def test_marker_interval():
    cfg = CoreliteConfig(k1=2.0)
    assert cfg.marker_interval(3.0) == pytest.approx(6.0)
    with pytest.raises(ConfigurationError):
        cfg.marker_interval(0.0)


@pytest.mark.parametrize(
    "field,value",
    [
        ("k1", 0.0),
        ("alpha", -1.0),
        ("beta", 0.0),
        ("edge_epoch", 0.0),
        ("core_epoch", -0.1),
        ("queue_capacity", 0.0),
        ("ss_thresh", 0.0),
        ("ss_double_interval", 0.0),
        ("initial_rate", 0.0),
        ("qthresh", -1.0),
        ("fn_k", -0.5),
        ("min_rate", -1.0),
        ("rav_gain", 0.0),
        ("rav_gain", 1.5),
        ("wav_gain", -0.1),
        ("marker_cache_size", 0),
    ],
)
def test_invalid_values_rejected(field, value):
    with pytest.raises(ConfigurationError):
        CoreliteConfig(**{field: value})


def test_qthresh_must_be_below_capacity():
    with pytest.raises(ConfigurationError):
        CoreliteConfig(qthresh=40.0, queue_capacity=40.0)


def test_min_rate_cannot_exceed_max_rate():
    with pytest.raises(ConfigurationError):
        CoreliteConfig(min_rate=100.0, max_rate=50.0)


def test_feedback_scheme_must_be_enum():
    with pytest.raises(ConfigurationError):
        CoreliteConfig(feedback_scheme="selective")


def test_fn_k_zero_is_allowed():
    # k = 0 is a legal (if ill-advised) setting the ABL-K ablation uses.
    assert CoreliteConfig(fn_k=0.0).fn_k == 0.0
