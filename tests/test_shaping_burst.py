"""Tests for token-bucket burst shaping and shaper parking."""

import pytest

from repro.core.shaping import PacedSender
from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork, FlowSpec
from repro.core.config import CoreliteConfig
from repro.sim.engine import Simulator
from repro.sim.sources import onoff_source


class TestTokenBucket:
    def make(self, rate=10.0, burst=1.0, backlog=None):
        sim = Simulator()
        times = []
        state = {"backlog": backlog}

        def emit():
            if state["backlog"] is None:
                times.append(sim.now)
                return True
            if state["backlog"] <= 0:
                return False
            state["backlog"] -= 1
            times.append(sim.now)
            return True

        sender = PacedSender(sim, rate, emit, burst=burst)
        return sim, sender, times, state

    def test_burst_one_is_pure_pacing(self):
        sim, sender, times, _ = self.make(rate=10.0, burst=1.0)
        sender.start()
        sim.run(until=0.35)
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3])

    def test_idle_flow_accumulates_burst_credit(self):
        sim, sender, times, state = self.make(rate=10.0, burst=4.0, backlog=0)
        sender.start()
        sim.run(until=2.0)  # parks immediately; credit accrues to 4
        assert times == []
        assert sender.idle_parks >= 1
        state["backlog"] = 6
        sender.kick()
        sim.run(until=2.0 + 1e-6)
        # the burst goes out back-to-back at t=2.0...
        assert len(times) == 4
        sim.run(until=2.25)
        # ...then the shaper settles at the paced rate for the rest.
        assert len(times) == 6

    def test_burst_capped_by_bucket_depth(self):
        sim, sender, times, state = self.make(rate=10.0, burst=2.0, backlog=0)
        sender.start()
        sim.run(until=10.0)
        state["backlog"] = 10
        sender.kick()
        sim.run(until=10.0 + 1e-6)
        assert len(times) == 2  # not 10, however long the idle period

    def test_rate_decrease_revokes_credit(self):
        """A freshly throttled flow must not burst on credit earned at its
        old, higher rate."""
        sim, sender, times, _ = self.make(rate=100.0, burst=1.0)
        sender.start()
        sim.run(until=0.011)
        assert len(times) == 2  # t=0 and t=0.01
        sender.set_rate(2.0)
        sim.run(until=0.4)
        assert len(times) == 2  # next token at 0.01 + 0.5
        sim.run(until=0.52)
        assert len(times) == 3

    def test_invalid_burst(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PacedSender(sim, 10.0, lambda: True, burst=0.5)

    def test_credit_reporting(self):
        sim, sender, times, state = self.make(rate=10.0, burst=3.0, backlog=0)
        sender.start()
        sim.run(until=0.25)
        assert sender.credit() == pytest.approx(min(3.0, 1.0 + 0.25 * 10.0), abs=0.2)


class TestBurstInTheNetwork:
    def test_bursty_source_benefits_from_shaper_burst(self):
        """An ON/OFF source behind a deeper token bucket clears its bursts
        faster (fewer deep backlogs) without hurting fairness."""

        def run(burst):
            net = CoreliteNetwork.single_bottleneck(
                seed=0, config=CoreliteConfig(shaper_burst=burst)
            )
            net.add_flow(FlowSpec(flow_id=1, weight=1.0))
            net.add_flow(FlowSpec(
                flow_id=2, weight=1.0, source=onoff_source(300.0, 0.3, 0.9),
            ))
            res = net.run(until=60.0)
            return res

        paced = run(1.0)
        bursty = run(8.0)
        # both deliver the source's offered load...
        for res in (paced, bursty):
            tput = res.mean_throughputs((40.0, 60.0))
            assert tput[2] == pytest.approx(75.0, rel=0.35)
        # ...and the network stays essentially lossless either way.
        assert bursty.total_drops <= paced.total_drops + 50


def test_config_validates_burst():
    with pytest.raises(ConfigurationError):
        CoreliteConfig(shaper_burst=0.0)
