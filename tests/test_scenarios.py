"""Unit tests for the paper's workload definitions."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    PATH_ASSIGNMENT,
    WEIGHTS_41,
    WEIGHTS_43,
    churn_schedule,
    fig3_schedule,
    staggered_schedule,
    startup_flows,
    topology1_flows,
)


def test_path_assignment_matches_paper():
    assert PATH_ASSIGNMENT[1] == ("C1", "C2")
    assert PATH_ASSIGNMENT[5] == ("C1", "C2")
    assert PATH_ASSIGNMENT[6] == ("C1", "C3")
    assert PATH_ASSIGNMENT[9] == ("C1", "C4")
    assert PATH_ASSIGNMENT[11] == ("C2", "C3")
    assert PATH_ASSIGNMENT[13] == ("C2", "C4")
    assert PATH_ASSIGNMENT[16] == ("C3", "C4")
    assert PATH_ASSIGNMENT[20] == ("C3", "C4")
    assert set(PATH_ASSIGNMENT) == set(range(1, 21))


def _weight_on_link(weights, link):
    """Aggregate weight crossing a congested link (C1C2/C2C3/C3C4)."""
    crossing = {
        "C1C2": [f for f, (a, b) in PATH_ASSIGNMENT.items() if a == "C1"],
        "C2C3": [
            f
            for f, (a, b) in PATH_ASSIGNMENT.items()
            if (a, b) in (("C1", "C3"), ("C1", "C4"), ("C2", "C3"), ("C2", "C4"))
        ],
        "C3C4": [
            f
            for f, (a, b) in PATH_ASSIGNMENT.items()
            if (a, b) in (("C1", "C4"), ("C2", "C4"), ("C3", "C4"))
        ],
    }[link]
    return sum(weights[f] for f in crossing)


def test_weights_41_give_20_units_per_congested_link():
    """The §4.1 magic: every congested link carries exactly 20 weight
    units, so the fair share is a flat 25 pkt/s per unit weight."""
    for link in ("C1C2", "C2C3", "C3C4"):
        assert _weight_on_link(WEIGHTS_41, link) == 20.0


def test_weights_41_assignment():
    assert WEIGHTS_41[5] == WEIGHTS_41[15] == 3.0
    assert WEIGHTS_41[1] == WEIGHTS_41[11] == WEIGHTS_41[16] == 1.0
    assert WEIGHTS_41[2] == 2.0


def test_weights_43_assignment():
    assert WEIGHTS_43[5] == WEIGHTS_43[10] == WEIGHTS_43[15] == 3.0
    assert WEIGHTS_43[1] == WEIGHTS_43[11] == WEIGHTS_43[16] == 1.0


def test_topology1_flows_builds_20_specs():
    specs = topology1_flows(WEIGHTS_41, fig3_schedule())
    assert len(specs) == 20
    by_id = {s.flow_id: s for s in specs}
    assert by_id[9].ingress_core == "C1" and by_id[9].egress_core == "C4"
    assert by_id[9].weight == 2.0


def test_topology1_flows_requires_full_weight_cover():
    with pytest.raises(ConfigurationError):
        topology1_flows({1: 1.0}, {})


class TestFig3Schedule:
    def test_late_flows(self):
        sched = fig3_schedule()
        for fid in (1, 9, 10, 11, 16):
            assert sched[fid] == ((250.0, 500.0),)
        assert sched[2] == ((0.0, 750.0),)

    def test_scaling(self):
        sched = fig3_schedule(scale=0.1)
        assert sched[1] == ((25.0, 50.0),)
        assert sched[2] == ((0.0, 75.0),)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            fig3_schedule(scale=0.0)


class TestStartupFlows:
    def test_weights_are_ceil_i_over_2(self):
        specs = startup_flows(10)
        weights = [s.weight for s in specs]
        assert weights == [1, 1, 2, 2, 3, 3, 4, 4, 5, 5]

    def test_all_on_single_bottleneck(self):
        for s in startup_flows(10):
            assert (s.ingress_core, s.egress_core) == ("C1", "C2")

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            startup_flows(0)


def test_staggered_schedule():
    sched = staggered_schedule(num_flows=5, gap=2.0)
    assert sched[1] == ((2.0, math.inf),)
    assert sched[5] == ((10.0, math.inf),)


def test_churn_schedule():
    sched = churn_schedule(num_flows=3, gap=1.0, lifetime=60.0, restart_after=5.0)
    assert sched[2] == ((2.0, 62.0), (67.0, math.inf))


def test_churn_schedule_validation():
    with pytest.raises(ConfigurationError):
        churn_schedule(lifetime=0.0)
