"""Heterogeneous workloads on the paper topology: the kitchen-sink
integration tests a downstream user's deployment would look like."""

import pytest

from repro.experiments.network import CoreliteNetwork, FlowSpec
from repro.sim.sources import onoff_source, poisson_source


class TestMultiHopTcp:
    def test_tcp_across_three_congested_links(self):
        """A TCP connection crossing all three core links (400 ms RTT
        path) against shaped cross-traffic on each link."""
        net = CoreliteNetwork.paper_topology(seed=0)
        net.add_flow(FlowSpec(flow_id=1, weight=2.0, ingress_core="C1",
                              egress_core="C4", transport="tcp"))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0, ingress_core="C1",
                              egress_core="C2"))
        net.add_flow(FlowSpec(flow_id=3, weight=1.0, ingress_core="C2",
                              egress_core="C3"))
        net.add_flow(FlowSpec(flow_id=4, weight=1.0, ingress_core="C3",
                              egress_core="C4"))
        res = net.run(until=150.0)
        window = (110.0, 150.0)
        rates = res.mean_rates(window)
        expected = res.expected_rates(at_time=120.0)
        # Allotments track the weighted max-min ideal (TCP w=2 gets 333,
        # each cross flow 167) within tolerance.
        for fid, exp in expected.items():
            assert rates[fid] == pytest.approx(exp, rel=0.25), (fid, rates[fid], exp)
        # The long-RTT TCP flow actually moves serious data.
        sender, receiver = net.tcp_hosts[1]
        assert receiver.delivered > 10_000
        assert sender.timeouts < 10

    def test_tcp_coexists_with_bursty_and_poisson_traffic(self):
        net = CoreliteNetwork.paper_topology(seed=1)
        net.add_flow(FlowSpec(flow_id=1, weight=1.0, ingress_core="C1",
                              egress_core="C4", transport="tcp"))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0, ingress_core="C1",
                              egress_core="C4",
                              source=poisson_source(80.0)))
        net.add_flow(FlowSpec(flow_id=3, weight=1.0, ingress_core="C1",
                              egress_core="C4",
                              source=onoff_source(400.0, 0.3, 0.9)))
        net.add_flow(FlowSpec(flow_id=4, weight=1.0, ingress_core="C1",
                              egress_core="C4"))
        res = net.run(until=120.0)
        tput = res.mean_throughputs((80.0, 120.0))
        # the Poisson flow gets its offered load; nobody starves.
        assert tput[2] == pytest.approx(80.0, rel=0.2)
        for fid in (1, 3, 4):
            assert tput[fid] > 40.0, (fid, tput)
        # the always-backlogged shaped flow gets at least its fair share
        # of what the demand-limited flows leave on the table.
        assert tput[4] > 100.0
        # losses stay modest despite the burstiness.
        assert res.total_drops < 0.02 * res.total_delivered()


class TestContractsOnPaperTopology:
    def test_multi_hop_contract_admitted_and_honored(self):
        net = CoreliteNetwork.paper_topology(seed=0)
        net.add_flow(FlowSpec(flow_id=1, weight=1.0, ingress_core="C1",
                              egress_core="C4", min_rate=150.0))
        for fid, (a, b) in ((2, ("C1", "C2")), (3, ("C2", "C3")),
                            (4, ("C3", "C4"))):
            net.add_flow(FlowSpec(flow_id=fid, weight=1.0,
                                  ingress_core=a, egress_core=b))
        res = net.run(until=120.0)
        # contract reserved on every congested link of the path
        for link in ("C1->C2", "C2->C3", "C3->C4"):
            assert net.admission.reserved_on(link) == 150.0
        # and honored end to end
        assert min(res.flows[1].rate_series.window(5.0, 120.0).values) >= 150.0
        tput = res.mean_throughputs((90.0, 120.0))
        assert tput[1] >= 150.0 * 0.95
