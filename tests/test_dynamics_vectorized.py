"""PR 6 x PR 7 interaction: topology dynamics on vectorized/aggregated clouds.

The dynamics executor (link failure, recovery, reroute) predates the
array-backed control plane and the aggregated sources, so nothing pins
their interaction: a reroute swaps forwarding tables under flows whose
rate control lives in numpy columns and whose packets come from one
shared aggregate timer chain.  These tests run fail/recover/reroute
schedules on clouds built with ``vectorized=True`` and ``aggregate:N``
buckets, and round-trip such a scenario through the JSON DSL.
"""

from __future__ import annotations

import json

from repro.experiments.builder import CloudBuilder
from repro.experiments.scenario_dsl import build_network, run_scenario
from repro.experiments.topospec import FlowPathSpec, TopologySpec
from repro.sim.dynamics import NetworkEvent


def _vectorized_chain_cloud(events, *, aggregate=4, seed=5, **spec_kwargs):
    """chain(3) carrying two aggregated buckets on the array control plane."""
    spec = TopologySpec.chain(3, events=events, **spec_kwargs)
    builder = CloudBuilder(spec, scheme="corelite", seed=seed, vectorized=True)
    builder.add_flow(FlowPathSpec(
        flow_id=1, weight=1.0, ingress_core="C1", egress_core="C3",
        aggregate=aggregate,
    ))
    builder.add_flow(FlowPathSpec(
        flow_id=2, weight=2.0, ingress_core="C2", egress_core="C3",
        aggregate=aggregate,
    ))
    return builder.build()


def test_failure_and_recovery_on_vectorized_aggregated_cloud():
    """Delivery of an aggregate bucket stops during the outage and
    resumes after recovery — the PR 6 chain test, re-run on the PR 7
    fast path."""
    cloud = _vectorized_chain_cloud((
        NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),
        NetworkEvent(time=16.0, kind="link_up", a="C1", b="C2"),
    ))
    result = cloud.run(until=30.0)
    record = result.record(1)
    outage = record.throughput_series.window(10.0, 16.0)
    assert max(outage.values, default=0.0) == 0.0
    recovered = record.throughput_series.window(20.0, 30.0)
    assert min(recovered.values) > 0.0
    # The co-located bucket keeps its weighted share throughout.
    assert result.record(2).delivered > 0
    assert result.dynamics["reroutes"] == 2
    assert cloud.dynamics.failure_drops() > 0


def test_mesh_reroute_moves_aggregated_bucket_onto_detour():
    spec = TopologySpec.mesh(
        events=(NetworkEvent(time=10.0, kind="link_down", a="A", b="B"),)
    )
    builder = CloudBuilder(spec, scheme="corelite", seed=3, vectorized=True)
    builder.add_flow(FlowPathSpec(
        flow_id=1, weight=1.0, ingress_core="A", egress_core="B", aggregate=4,
    ))
    cloud = builder.build()
    before = cloud.flow_path_links(1)
    assert "A->B" in before
    result = cloud.run(until=40.0)
    after = cloud.flow_path_links(1)
    assert "A->B" not in after and len(after) > len(before)
    tail = result.record(1).throughput_series.window(25.0, 40.0)
    assert min(tail.values) > 0.0


def test_reroute_latency_applies_on_vectorized_cloud():
    """The control-plane convergence delay is orthogonal to the data-path
    representation: tables swap at fail-time + latency either way."""
    cloud = _vectorized_chain_cloud(
        (NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),),
        reroute_latency=2.0,
    )
    captured = {}

    def probe():
        captured[cloud.sim.now] = cloud.dynamics.reroutes

    cloud.sim.schedule_at(9.0, probe)
    cloud.sim.schedule_at(11.0, probe)
    cloud.run(until=12.0)
    assert captured[9.0] == 0
    assert captured[11.0] == 1


# ---------------------------------------------------------------------------
# Scenario-DSL round trip
# ---------------------------------------------------------------------------

_DYNAMIC_VECTORIZED_SCENARIO = {
    "scheme": "corelite",
    "seed": 5,
    "duration": 30.0,
    "vectorized": True,
    "topology": {
        "kind": "chain",
        "num_cores": 3,
        "events": [
            {"time": 8.0, "kind": "link_down", "link": ["C1", "C2"]},
            {"time": 16.0, "kind": "link_up", "link": ["C1", "C2"]},
        ],
    },
    "flows": [
        {"id": 1, "weight": 1, "ingress": "C1", "egress": "C3", "aggregate": 4},
        {"id": 2, "weight": 2, "ingress": "C2", "egress": "C3", "aggregate": 4},
    ],
}


def test_scenario_json_round_trip_preserves_dynamics_and_scale_knobs():
    """Serializing the scenario to JSON and back loses nothing: the
    rebuilt network carries the event schedule, the vectorized flag and
    the aggregate buckets."""
    revived = json.loads(json.dumps(_DYNAMIC_VECTORIZED_SCENARIO))
    assert revived == _DYNAMIC_VECTORIZED_SCENARIO
    net = build_network(revived)
    spec = net.spec
    assert spec.events == (
        NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),
        NetworkEvent(time=16.0, kind="link_up", a="C1", b="C2"),
    )
    # The spec itself round-trips through its own dict form too.
    assert TopologySpec.from_dict(spec.to_dict()).events == spec.events


def test_scenario_run_applies_dynamics_on_vectorized_cloud():
    revived = json.loads(json.dumps(_DYNAMIC_VECTORIZED_SCENARIO))
    result = run_scenario(revived)
    assert result.dynamics["reroutes"] == 2
    record = result.record(1)
    outage = record.throughput_series.window(10.0, 16.0)
    assert max(outage.values, default=0.0) == 0.0
    recovered = record.throughput_series.window(20.0, 30.0)
    assert min(recovered.values) > 0.0
    assert result.record(2).delivered > 0
