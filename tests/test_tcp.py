"""Unit tests for the TCP sender/receiver, plus edge-interaction
integration (§4.4/§6 extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork, CsfqNetwork, FlowSpec
from repro.hosts.tcp import TcpReceiver, TcpSender
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue


def direct_pair(bandwidth=1000.0, delay=0.02, queue_capacity=1000):
    """Sender and receiver wired directly by a pair of links."""
    sim = Simulator()
    sender = TcpSender("S", sim, flow_id=1, dst_host="R")
    receiver = TcpReceiver("R", sim, flow_id=1, src_host="S")
    fwd = Link(sim, "S->R", "S", receiver, bandwidth, delay, DropTailQueue(queue_capacity))
    rev = Link(sim, "R->S", "R", sender, bandwidth, delay, DropTailQueue(queue_capacity))
    sender.set_route("R", fwd)
    receiver.set_route("S", rev)
    return sim, sender, receiver, fwd


class TestTcpBasics:
    def test_slow_start_doubles_cwnd_per_rtt(self):
        sim, sender, receiver, _ = direct_pair()
        sender.start()
        sim.run(until=0.3)  # a few RTTs (RTT = 40 ms)
        assert sender.cwnd > 8.0
        assert receiver.delivered > 0
        assert receiver.delivered >= sender.snd_una

    def test_reliable_in_order_delivery_without_loss(self):
        sim, sender, receiver, _ = direct_pair()
        sender.start()
        sim.run(until=2.0)
        assert sender.retransmissions == 0
        assert sender.timeouts == 0
        assert receiver.duplicates == 0
        assert receiver.delivered >= sender.snd_una > 100

    def test_stop_halts_transmission(self):
        sim, sender, receiver, _ = direct_pair()
        sender.start()
        sim.run(until=0.5)
        sender.stop()
        sent = sender.packets_sent
        sim.run(until=3.0)
        assert sender.packets_sent == sent
        assert not sender.running

    def test_single_loss_recovers_by_fast_retransmit(self):
        sim, sender, receiver, fwd = direct_pair()
        dropped = []

        def drop_one(packet, now):
            if packet.seq == 20 and not dropped:
                dropped.append(packet.seq)
                return True
            return False

        fwd.add_arrival_tap(drop_one)
        sender.start()
        sim.run(until=2.0)
        assert dropped == [20]
        assert sender.fast_retransmits == 1
        assert sender.timeouts == 0
        assert receiver.delivered >= sender.snd_una > 100

    def test_burst_loss_recovers_via_newreno_partial_acks(self):
        sim, sender, receiver, fwd = direct_pair()
        dropped = []

        def drop_burst(packet, now):
            if 30 <= packet.seq < 38 and packet.seq not in dropped:
                dropped.append(packet.seq)
                return True
            return False

        fwd.add_arrival_tap(drop_burst)
        sender.start()
        sim.run(until=4.0)
        assert len(dropped) == 8
        # every hole repaired without one RTO each
        assert receiver.delivered >= sender.snd_una > 200
        assert sender.timeouts <= 1

    def test_total_blackout_causes_timeouts_and_backoff(self):
        sim, sender, receiver, fwd = direct_pair()
        fwd.add_arrival_tap(lambda p, t: True)  # everything is lost
        sender.start()
        sim.run(until=10.0)
        assert sender.timeouts >= 3
        assert sender.rto > 1.0  # exponential backoff kicked in
        assert sender.cwnd == 1.0

    def test_rtt_estimate_tracks_path(self):
        sim, sender, receiver, _ = direct_pair(delay=0.05)
        sender.start()
        sim.run(until=2.0)
        assert sender.srtt == pytest.approx(0.1, rel=0.5)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            TcpSender("S", sim, 1, "R", initial_ssthresh=1.0)
        with pytest.raises(ConfigurationError):
            TcpSender("S", sim, 1, "R", max_cwnd=1.0)


class TestTcpReceiver:
    def test_cumulative_ack_advances_through_buffered_ooo(self):
        sim = Simulator()
        receiver = TcpReceiver("R", sim, flow_id=1, src_host="S")
        acks = []

        class FakeLink:
            name = "rev"

            def send(self, packet):
                acks.append(packet.seq)
                return True

        receiver.set_route("S", FakeLink())
        for seq in (0, 2, 3, 1):
            receiver.receive(Packet.data(1, "S", "R", seq=seq, now=0.0), link=None)
        assert acks == [1, 1, 1, 4]
        assert receiver.delivered == 4

    def test_duplicate_data_counted(self):
        sim = Simulator()
        receiver = TcpReceiver("R", sim, flow_id=1, src_host="S")

        class FakeLink:
            name = "rev"

            def send(self, packet):
                return True

        receiver.set_route("S", FakeLink())
        for seq in (0, 0):
            receiver.receive(Packet.data(1, "S", "R", seq=seq, now=0.0), link=None)
        assert receiver.duplicates == 1


class TestTcpOverCorelite:
    def test_weighted_shares_flow_through_to_tcp(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1, weight=1.0, transport="tcp"))
        net.add_flow(FlowSpec(flow_id=2, weight=2.0, transport="tcp"))
        res = net.run(until=150.0)
        # The edge allots the weighted split...
        rates = res.mean_rates((110.0, 150.0))
        assert rates[2] / rates[1] == pytest.approx(2.0, rel=0.25)
        # ...and TCP realizes a clearly weighted-ordered throughput.
        tput = res.mean_throughputs((110.0, 150.0))
        assert tput[2] > 1.3 * tput[1]
        # Neither flow exceeds its allotment.
        assert tput[1] <= rates[1] * 1.1
        assert tput[2] <= rates[2] * 1.1

    def test_tcp_adapts_to_edge_policing_without_collapse(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1, weight=1.0, transport="tcp"))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0))  # shaped competitor
        res = net.run(until=120.0)
        sender, receiver = net.tcp_hosts[1]
        # TCP keeps working: bounded timeouts, sustained delivery.
        assert sender.timeouts < 10
        assert receiver.delivered > 5_000
        # The shaped flow is not starved by TCP's bursts.
        rates = res.mean_rates((90.0, 120.0))
        assert rates[2] > 150.0

    def test_tcp_rejected_on_csfq(self):
        net = CsfqNetwork.single_bottleneck(seed=0)
        with pytest.raises(ConfigurationError):
            net.add_flow(FlowSpec(flow_id=1, transport="tcp"))

    def test_tcp_spec_validation(self):
        from repro.sim.sources import poisson_source

        with pytest.raises(Exception):
            FlowSpec(flow_id=1, transport="tcp", source=poisson_source(10.0))
        with pytest.raises(Exception):
            FlowSpec(flow_id=1, transport="carrier-pigeon")
