"""Unit tests for the marker-cache feedback mechanism."""

import random
from collections import Counter

import pytest

from repro.core.cache_feedback import MarkerCacheFeedback
from repro.errors import ConfigurationError


def make(cache_size=32, seed=0):
    sent = []
    fb = MarkerCacheFeedback(
        cache_size, random.Random(seed), emit=lambda fid, edge, label: sent.append(fid)
    )
    return fb, sent


def test_cache_is_circular():
    fb, _ = make(cache_size=3)
    for i in range(5):
        fb.observe(i, f"E{i}", 1.0, 0.0)
    assert len(fb) == 3
    assert fb.flow_share(0) == 0.0  # evicted
    assert fb.flow_share(4) == pytest.approx(1 / 3)


def test_no_feedback_without_congestion():
    fb, sent = make()
    fb.observe(1, "E1", 1.0, 0.0)
    assert fb.on_epoch(0, 0.1) == 0
    assert sent == []


def test_empty_cache_sends_nothing():
    fb, sent = make()
    assert fb.on_epoch(5, 0.1) == 0
    assert sent == []


def test_sends_requested_count():
    fb, sent = make()
    for i in range(10):
        fb.observe(i % 2, f"E{i % 2}", 1.0, 0.0)
    assert fb.on_epoch(7, 0.1) == 7
    assert len(sent) == 7
    assert fb.feedback_sent == 7


def test_selection_proportional_to_cache_share():
    """The paper's Figure 2 claim: a flow with twice the normalized rate
    (twice the markers) receives about twice the feedback."""
    fb, sent = make(cache_size=300, seed=1)
    # flow 1: 200 markers, flow 2: 100 markers
    for i in range(300):
        flow = 1 if i % 3 != 2 else 2
        fb.observe(flow, f"E{flow}", 1.0, 0.0)
    fb.on_epoch(3000, 0.1)
    counts = Counter(sent)
    ratio = counts[1] / counts[2]
    assert ratio == pytest.approx(2.0, rel=0.15)


def test_feedback_carries_origin_edge():
    sent = []
    fb = MarkerCacheFeedback(8, random.Random(0), emit=lambda f, e, l: sent.append((f, e, l)))
    fb.observe(9, "Ein9", 4.5, 0.0)
    fb.on_epoch(2, 0.1)
    assert sent == [(9, "Ein9", 4.5), (9, "Ein9", 4.5)]


def test_negative_count_rejected():
    fb, _ = make()
    with pytest.raises(ConfigurationError):
        fb.on_epoch(-1, 0.0)


def test_invalid_cache_size():
    with pytest.raises(ConfigurationError):
        MarkerCacheFeedback(0, random.Random(0), emit=lambda *a: None)


def test_markers_seen_counter():
    fb, _ = make(cache_size=2)
    for i in range(5):
        fb.observe(i, "E", 1.0, 0.0)
    assert fb.markers_seen == 5
