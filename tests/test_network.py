"""Unit tests for the network harnesses (construction-level; end-to-end
behavior is covered by test_integration.py)."""

import math

import pytest

from repro.core.config import CoreliteConfig
from repro.errors import ConfigurationError, FlowError, TopologyError
from repro.experiments.network import (
    CoreliteNetwork,
    CsfqNetwork,
    FifoLossNetwork,
    FlowSpec,
)


class TestFlowSpec:
    def test_defaults(self):
        s = FlowSpec(flow_id=1)
        assert s.weight == 1.0
        assert s.schedule == ((0.0, math.inf),)
        assert s.ingress_edge == "Ein1"
        assert s.egress_edge == "Eout1"

    def test_same_core_rejected(self):
        with pytest.raises(FlowError):
            FlowSpec(flow_id=1, ingress_core="C1", egress_core="C1")

    def test_bad_schedule_rejected(self):
        with pytest.raises(FlowError):
            FlowSpec(flow_id=1, schedule=((5.0, 5.0),))
        with pytest.raises(FlowError):
            FlowSpec(flow_id=1, schedule=((-1.0, 5.0),))

    def test_bad_weight_rejected(self):
        with pytest.raises(FlowError):
            FlowSpec(flow_id=1, weight=0.0)


class TestConstruction:
    def test_chain_topology_has_core_links(self):
        net = CoreliteNetwork.paper_topology()
        assert net.core_names == ["C1", "C2", "C3", "C4"]
        assert "C1->C2" in net.topology.links
        assert "C3->C2" in net.topology.links

    def test_needs_two_cores(self):
        with pytest.raises(ConfigurationError):
            CoreliteNetwork(num_cores=1)

    def test_add_flow_creates_edges_and_links(self):
        net = CoreliteNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=3))
        assert "Ein3" in net.topology.nodes
        assert "Eout3" in net.topology.nodes
        assert "Ein3->C1" in net.topology.links
        assert "C2->Eout3" in net.topology.links

    def test_duplicate_flow_rejected(self):
        net = CoreliteNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=1))
        with pytest.raises(FlowError):
            net.add_flow(FlowSpec(flow_id=1))

    def test_unknown_core_rejected(self):
        net = CoreliteNetwork.single_bottleneck()
        with pytest.raises(TopologyError):
            net.add_flow(FlowSpec(flow_id=1, egress_core="C9"))

    def test_no_flows_rejected(self):
        net = CoreliteNetwork.single_bottleneck()
        with pytest.raises(ConfigurationError):
            net.finalize()

    def test_add_after_finalize_rejected(self):
        net = CoreliteNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=1))
        net.finalize()
        with pytest.raises(ConfigurationError):
            net.add_flow(FlowSpec(flow_id=2))

    def test_flow_path_links(self):
        net = CoreliteNetwork.paper_topology()
        net.add_flow(FlowSpec(flow_id=9, ingress_core="C1", egress_core="C4"))
        net.finalize()
        assert net.flow_path_links(9) == (
            "Ein9->C1", "C1->C2", "C2->C3", "C3->C4", "C4->Eout9",
        )

    def test_corelite_enables_feedback_on_core_output_links(self):
        net = CoreliteNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=1))
        net.finalize()
        c1 = net.core_router("C1")
        assert "C1->C2" in c1.enabled_links()
        assert "C1->Ein1" in c1.enabled_links()  # reverse access link too

    def test_fifo_network_enables_nothing(self):
        net = FifoLossNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=1))
        net.finalize()
        assert net.core_router("C1").enabled_links() == ()

    def test_config_copied_not_shared(self):
        cfg = CoreliteConfig()
        net = CoreliteNetwork.single_bottleneck(config=cfg)
        assert net.config is not cfg
        assert net.config.max_rate == 500.0  # clamped to access capacity

    def test_min_rate_rejected_for_csfq(self):
        net = CsfqNetwork.single_bottleneck()
        with pytest.raises(ConfigurationError):
            net.add_flow(FlowSpec(flow_id=1, min_rate=5.0))

    def test_rtt_matches_paper(self):
        """One-way path delays on Topology 1: 120/160/200 ms -> RTTs of
        240/320/400 ms as stated in §4.1."""
        net = CoreliteNetwork.paper_topology()
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C2"))
        net.add_flow(FlowSpec(flow_id=6, ingress_core="C1", egress_core="C3"))
        net.add_flow(FlowSpec(flow_id=9, ingress_core="C1", egress_core="C4"))
        net.finalize()
        topo = net.topology
        assert topo.path_delay("Ein1", "Eout1") == pytest.approx(0.120)
        assert topo.path_delay("Ein6", "Eout6") == pytest.approx(0.160)
        assert topo.path_delay("Ein9", "Eout9") == pytest.approx(0.200)


class TestRunValidation:
    def test_bad_duration(self):
        net = CoreliteNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=1))
        with pytest.raises(ConfigurationError):
            net.run(until=0.0)

    def test_bad_sample_interval(self):
        net = CoreliteNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=1))
        with pytest.raises(ConfigurationError):
            net.run(until=1.0, sample_interval=0.0)

    def test_short_run_produces_result(self):
        net = CoreliteNetwork.single_bottleneck()
        net.add_flow(FlowSpec(flow_id=1))
        res = net.run(until=2.0, sample_interval=0.5)
        assert res.scheme == "corelite"
        assert 1 in res.flows
        assert len(res.flows[1].rate_series) == 4
