"""Unit tests for the weighted CSFQ core router."""

import pytest

from repro.csfq.config import CsfqConfig
from repro.csfq.router import CsfqCoreRouter
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue
from repro.sim.rng import RngRegistry


class Sink:
    def __init__(self, name):
        self.name = name
        self.packets = []

    def receive(self, packet, link):
        self.packets.append(packet)


@pytest.fixture
def rig():
    sim = Simulator()
    cfg = CsfqConfig()
    router = CsfqCoreRouter("C1", sim, cfg, RngRegistry(0))
    sink = Sink("Eout")
    out = Link(sim, "C1->Eout", "C1", sink, 500.0, 0.0, DropTailQueue(40))
    router.set_route("Eout", out)
    state = router.enable_on_link(out)
    return sim, cfg, router, out, sink, state


def labeled(label, seq=0, flow=1):
    return Packet.data(flow, "Ein1", "Eout", seq=seq, now=0.0, label=label)


def test_cold_start_accepts_everything(rig):
    sim, cfg, router, out, sink, state = rig
    for i in range(10):
        router.receive(labeled(10.0, seq=i), link=None)
    sim.run()
    assert len(sink.packets) == 10
    assert state.prob_drops == 0


def test_enable_requires_own_link(rig):
    sim, cfg, router, out, sink, state = rig
    foreign = Link(sim, "X->Y", "X", sink, 500.0, 0.0, DropTailQueue(40))
    with pytest.raises(ConfigurationError):
        router.enable_on_link(foreign)


def test_double_enable_rejected(rig):
    sim, cfg, router, out, sink, state = rig
    with pytest.raises(ConfigurationError):
        router.enable_on_link(out)


def test_uncongested_alpha_tracks_max_label(rig):
    sim, cfg, router, out, sink, state = rig

    def send(label):
        router.receive(labeled(label, seq=send.seq), link=None)
        send.seq += 1
    send.seq = 0

    # Sparse, low-rate traffic: always uncongested; after Klink the alpha
    # becomes the max label of the window.
    t = 0.0
    for i in range(50):
        t += 0.02
        sim.schedule_at(t, send, 20.0 if i % 5 else 35.0)
    sim.run()
    assert state.congested is False
    assert state.alpha == pytest.approx(35.0, rel=0.01)


def test_congestion_flag_follows_arrival_estimate(rig):
    sim, cfg, router, out, sink, state = rig

    def blast():
        for i in range(40):
            router.receive(labeled(30.0, seq=blast.seq), link=None)
            blast.seq += 1
    blast.seq = 0
    for k in range(10):
        sim.schedule(k * 0.02, blast)  # 2000 pkt/s >> 500
    sim.run(until=0.5)
    assert state.congested is True


def test_drop_probability_targets_over_share_labels():
    # Dedicated rig with a deep buffer so the probabilistic filter is the
    # only thing dropping (overflow would also decay alpha).
    sim = Simulator()
    cfg = CsfqConfig()
    router = CsfqCoreRouter("C1", sim, cfg, RngRegistry(0))
    sink = Sink("Eout")
    out = Link(sim, "C1->Eout", "C1", sink, 10_000.0, 0.0, DropTailQueue(10_000))
    router.set_route("Eout", out)
    state = router.enable_on_link(out)
    state.alpha = 10.0
    n = 400
    for i in range(n):
        router.receive(labeled(5.0, seq=i, flow=1), link=None)  # below alpha
    for i in range(n):
        router.receive(labeled(40.0, seq=i, flow=2), link=None)  # 4x alpha
    sim.run()
    low = sum(1 for p in sink.packets if p.flow_id == 1)
    high = sum(1 for p in sink.packets if p.flow_id == 2)
    assert low == n  # label below fair share: never dropped by the filter
    # drop prob = 1 - 10/40 = 0.75 -> ~25% survive
    assert high / n == pytest.approx(0.25, abs=0.08)


def test_forwarded_packets_are_relabeled_to_alpha(rig):
    sim, cfg, router, out, sink, state = rig
    state.alpha = 10.0
    survivors = []
    for i in range(200):
        router.receive(labeled(40.0, seq=i), link=None)
    sim.run()
    for p in sink.packets:
        assert p.label <= 10.0 + 1e-9


def test_below_share_labels_not_relabeled(rig):
    sim, cfg, router, out, sink, state = rig
    state.alpha = 10.0
    router.receive(labeled(5.0), link=None)
    sim.run()
    assert sink.packets[0].label == 5.0


def test_buffer_overflow_decays_alpha(rig):
    sim, cfg, router, out, sink, state = rig
    state.alpha = 1000.0  # absurdly high: filter lets everything in
    for i in range(100):
        router.receive(labeled(5.0, seq=i), link=None)
    # queue capacity 40: overflows happened synchronously
    assert state.overflow_drops > 0
    assert state.alpha < 1000.0


def test_control_packets_bypass_csfq(rig):
    sim, cfg, router, out, sink, state = rig
    state.alpha = 0.001  # would drop any data packet
    state.congested = True
    m = Packet.marker(1, "Ein1", "Eout", label=100.0, now=0.0)
    router.receive(m, link=None)
    sim.run()
    assert any(p.kind == PacketKind.MARKER for p in sink.packets)


def test_zero_label_never_dropped(rig):
    sim, cfg, router, out, sink, state = rig
    state.alpha = 10.0
    router.receive(labeled(0.0), link=None)
    sim.run()
    assert len(sink.packets) == 1
