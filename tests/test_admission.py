"""Tests for contract admission control."""

import pytest

from repro.core.admission import AdmissionController
from repro.errors import ConfigurationError, FlowError
from repro.experiments.network import CoreliteNetwork, FlowSpec


@pytest.fixture
def controller():
    return AdmissionController({"L1": 500.0, "L2": 500.0}, utilization_bound=0.9)


class TestController:
    def test_reserve_and_query(self, controller):
        assert controller.request("f1", ["L1"], 100.0)
        assert controller.reserved_on("L1") == 100.0
        assert controller.reserved_on("L2") == 0.0
        assert controller.contract_of("f1") == 100.0
        assert controller.headroom_on("L1") == pytest.approx(350.0)

    def test_rejection_when_headroom_exhausted(self, controller):
        assert controller.request("f1", ["L1"], 400.0)
        assert not controller.request("f2", ["L1"], 100.0)  # 450 limit
        assert controller.rejected == 1
        assert controller.reserved_on("L1") == 400.0  # nothing leaked

    def test_multi_link_reservation_is_atomic(self, controller):
        controller.request("hog", ["L2"], 449.0)
        # f2 fits L1 but not L2: nothing must be reserved anywhere.
        assert not controller.request("f2", ["L1", "L2"], 10.0)
        assert controller.reserved_on("L1") == 0.0

    def test_release_frees_capacity(self, controller):
        controller.request("f1", ["L1", "L2"], 200.0)
        freed = controller.release("f1")
        assert freed == 200.0
        assert controller.reserved_on("L1") == 0.0
        assert controller.request("f2", ["L1"], 449.0)

    def test_double_contract_rejected(self, controller):
        controller.request("f1", ["L1"], 10.0)
        with pytest.raises(FlowError):
            controller.request("f1", ["L1"], 10.0)

    def test_release_without_contract(self, controller):
        with pytest.raises(FlowError):
            controller.release("ghost")

    def test_unknown_link_rejected(self, controller):
        with pytest.raises(ConfigurationError):
            controller.request("f1", ["L9"], 10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AdmissionController({"L": 500.0}, utilization_bound=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController({"L": -1.0})
        c = AdmissionController({"L": 500.0})
        with pytest.raises(ConfigurationError):
            c.request("f", ["L"], 0.0)


class TestNetworkIntegration:
    def test_admissible_contracts_are_accepted(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1, min_rate=200.0))
        net.add_flow(FlowSpec(flow_id=2, min_rate=200.0))
        net.finalize()
        assert net.admission.reserved_on("C1->C2") == 400.0

    def test_oversubscribed_contracts_rejected_at_finalize(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1, min_rate=300.0))
        net.add_flow(FlowSpec(flow_id=2, min_rate=300.0))  # 600 > 450 limit
        with pytest.raises(ConfigurationError):
            net.finalize()

    def test_uncontracted_network_builds_no_controller(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1))
        net.finalize()
        assert not hasattr(net, "admission")
