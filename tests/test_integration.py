"""End-to-end integration tests: the paper's behavioral claims on small,
fast workloads.  These run whole simulations (a few wall-clock seconds in
total); the full-size reproductions live in benchmarks/.
"""

import pytest

from repro.core.config import CoreliteConfig, FeedbackScheme
from repro.experiments.network import (
    CoreliteNetwork,
    CsfqNetwork,
    FifoLossNetwork,
    FlowSpec,
)
from repro.experiments.scenarios import startup_flows
from repro.fairness.metrics import weighted_jain_index


def run_corelite(flows, until=60.0, seed=0, config=None, **net_kwargs):
    net = CoreliteNetwork.single_bottleneck(seed=seed, config=config, **net_kwargs)
    net.add_flows(flows)
    return net.run(until=until)


class TestWeightedFairness:
    def test_two_flows_split_by_weight(self):
        # With only two flows the fair shares (167/333) sit far above the
        # slow-start landing point, so the linear phase needs ~100 s of
        # simulated time to climb there (alpha=1 per 0.3 s epoch).
        res = run_corelite(
            [FlowSpec(flow_id=1, weight=1.0), FlowSpec(flow_id=2, weight=2.0)],
            until=150.0,
        )
        rates = res.mean_rates((110.0, 150.0))
        assert rates[2] / rates[1] == pytest.approx(2.0, rel=0.15)
        total = rates[1] + rates[2]
        assert total == pytest.approx(500.0, rel=0.1)

    def test_equal_weights_split_evenly(self):
        res = run_corelite(
            [FlowSpec(flow_id=i, weight=1.0) for i in (1, 2, 3, 4)], until=60.0
        )
        rates = res.mean_rates((40.0, 60.0))
        assert weighted_jain_index(list(rates.values()), [1.0] * 4) > 0.98

    def test_startup_workload_matches_expected_within_10_percent(self):
        res = run_corelite(startup_flows(10), until=60.0)
        rates = res.mean_rates((40.0, 60.0))
        expected = res.expected_rates(at_time=50.0)
        for fid, exp in expected.items():
            assert rates[fid] == pytest.approx(exp, rel=0.15), f"flow {fid}"

    def test_corelite_is_nearly_lossless(self):
        res = run_corelite(startup_flows(10), until=60.0)
        # The paper's claim: rate adaptation without packet loss.  Allow the
        # startup transient only: < 0.5% of delivered traffic.
        assert res.total_drops < 0.005 * res.total_delivered()


class TestMarkerCacheScheme:
    def test_cache_scheme_converges_losslessly(self):
        cfg = CoreliteConfig(feedback_scheme=FeedbackScheme.MARKER_CACHE)
        res = run_corelite(
            [FlowSpec(flow_id=1, weight=1.0), FlowSpec(flow_id=2, weight=2.0)],
            until=150.0,
            config=cfg,
        )
        assert res.total_drops == 0
        rates = res.mean_rates((110.0, 150.0))
        # The cache variant is less precise than selective, but must still
        # give the heavier flow clearly more.
        assert rates[2] > rates[1] * 1.3


class TestMultiHop:
    def test_parking_lot_maxmin(self):
        """A long flow across two congested links and short cross-flows:
        weighted max-min gives everyone the same per-weight share."""
        net = CoreliteNetwork(num_cores=3, seed=0)
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C3"))
        net.add_flow(FlowSpec(flow_id=2, ingress_core="C1", egress_core="C2"))
        net.add_flow(FlowSpec(flow_id=3, ingress_core="C2", egress_core="C3"))
        res = net.run(until=80.0)
        rates = res.mean_rates((50.0, 80.0))
        expected = res.expected_rates(at_time=60.0)
        for fid in (1, 2, 3):
            assert rates[fid] == pytest.approx(expected[fid], rel=0.15)

    def test_cumulative_service_same_weight_same_service(self):
        """Figure 4's point: equal-weight flows get equal cumulative
        service regardless of hop count."""
        net = CoreliteNetwork(num_cores=3, seed=0)
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C3"))  # 2 hops
        net.add_flow(FlowSpec(flow_id=2, ingress_core="C1", egress_core="C2"))  # 1 hop
        net.add_flow(FlowSpec(flow_id=3, ingress_core="C2", egress_core="C3"))  # 1 hop
        res = net.run(until=80.0)
        delivered = {fid: res.flows[fid].delivered for fid in (1, 2, 3)}
        assert delivered[1] == pytest.approx(delivered[2], rel=0.15)
        assert delivered[1] == pytest.approx(delivered[3], rel=0.15)


class TestDynamics:
    def test_new_flow_claims_weighted_share(self):
        # alpha=3 speeds the linear climb so the lone flow can actually
        # reach link capacity within the test horizon.
        res = run_corelite(
            [
                FlowSpec(flow_id=1, weight=1.0),
                FlowSpec(flow_id=2, weight=1.0, schedule=((70.0, 200.0),)),
            ],
            until=130.0,
            config=CoreliteConfig(alpha=3.0),
        )
        solo = res.mean_rates((55.0, 69.0))
        shared = res.mean_rates((105.0, 130.0))
        assert solo[1] == pytest.approx(500.0, rel=0.12)
        assert shared[1] == pytest.approx(250.0, rel=0.2)
        assert shared[2] == pytest.approx(250.0, rel=0.2)

    def test_rate_recovers_after_flow_leaves(self):
        res = run_corelite(
            [
                FlowSpec(flow_id=1, weight=1.0),
                FlowSpec(flow_id=2, weight=1.0, schedule=((0.0, 40.0),)),
            ],
            until=120.0,
        )
        shared = res.mean_rates((25.0, 39.0))
        solo = res.mean_rates((100.0, 120.0))
        assert shared[1] < 300.0
        assert solo[1] > shared[1] * 1.4  # climbed back toward capacity

    def test_restarting_flow_goes_through_slow_start_again(self):
        res = run_corelite(
            [
                FlowSpec(flow_id=1, weight=1.0),
                FlowSpec(flow_id=2, weight=1.0, schedule=((0.0, 30.0), (35.0, 100.0))),
            ],
            until=60.0,
        )
        series = res.flows[2].rate_series
        # right after restart the rate is tiny again
        assert series.value_at(36.0) <= 4.0


class TestCorelitVsCsfq:
    def test_csfq_also_converges_but_with_losses(self):
        specs = startup_flows(6)
        corelite = CoreliteNetwork.single_bottleneck(seed=0)
        corelite.add_flows(specs)
        res_corelite = corelite.run(until=60.0)
        csfq = CsfqNetwork.single_bottleneck(seed=0)
        csfq.add_flows(specs)
        res_csfq = csfq.run(until=60.0)

        for res in (res_corelite, res_csfq):
            tput = res.mean_throughputs((40.0, 60.0))
            expected = res.expected_rates(at_time=50.0)
            for fid, exp in expected.items():
                assert tput[fid] == pytest.approx(exp, rel=0.2), (res.scheme, fid)
        # the paper's qualitative contrast
        assert res_csfq.total_losses() > 10 * max(1, res_corelite.total_losses())

    def test_fifo_gives_no_weighted_fairness(self):
        specs = startup_flows(6)
        fifo = FifoLossNetwork.single_bottleneck(seed=0)
        fifo.add_flows(specs)
        res = fifo.run(until=60.0)
        rates = res.mean_rates((40.0, 60.0))
        weights = [res.flows[f].weight for f in sorted(rates)]
        wj = weighted_jain_index([rates[f] for f in sorted(rates)], weights)
        assert wj < 0.9  # visibly unfair in the weighted sense


class TestMinimumRateContracts:
    def test_contracted_flow_keeps_its_floor(self):
        res = run_corelite(
            [
                FlowSpec(flow_id=1, weight=1.0, min_rate=200.0),
                FlowSpec(flow_id=2, weight=1.0),
                FlowSpec(flow_id=3, weight=1.0),
            ],
            until=80.0,
        )
        rates = res.mean_rates((50.0, 80.0))
        assert rates[1] >= 200.0 * 0.99
        # remaining capacity split between flows 2 and 3
        assert rates[2] == pytest.approx(rates[3], rel=0.25)


class TestDeterminism:
    def test_same_seed_same_result(self):
        specs = [FlowSpec(flow_id=1, weight=1.0), FlowSpec(flow_id=2, weight=3.0)]
        runs = []
        for _ in range(2):
            net = CoreliteNetwork.single_bottleneck(seed=123)
            net.add_flows(specs)
            res = net.run(until=20.0)
            runs.append(
                tuple(res.flows[1].rate_series.values) + tuple(res.flows[2].rate_series.values)
            )
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        specs = startup_flows(4)
        outcomes = []
        for seed in (1, 2):
            net = CoreliteNetwork.single_bottleneck(seed=seed)
            net.add_flows(specs)
            res = net.run(until=20.0)
            outcomes.append(tuple(res.flows[1].rate_series.values))
        assert outcomes[0] != outcomes[1]
