"""Tests for the closed-form control-loop predictions, checked against
the actual RateController."""

import math

import pytest

from repro.core.adaptation import Phase, RateController
from repro.core.config import CoreliteConfig
from repro.core.theory import (
    LoopBudget,
    feedback_latency,
    linear_climb_time,
    loop_budget,
    oscillation_band,
    slow_start_exit,
    throttle_authority,
)
from repro.errors import ConfigurationError


def simulate_slow_start(config, weight):
    """Run the real controller with no feedback until it goes linear."""
    c = RateController(config, weight=weight, start_time=0.0)
    t = 0.0
    while c.phase is Phase.SLOW_START:
        t += config.edge_epoch
        c.on_epoch(0, t)
        if t > 1000.0:
            return math.inf, c.rate
    return t, c.rate


@pytest.mark.parametrize("weight", [1.0, 2.0, 3.0, 4.0, 5.0])
def test_slow_start_exit_matches_controller(weight):
    config = CoreliteConfig()
    predicted_time, predicted_rate = slow_start_exit(config, weight)
    actual_time, actual_rate = simulate_slow_start(config, weight)
    assert actual_rate == pytest.approx(predicted_rate)
    # The controller checks once per edge epoch, so allow one epoch slack.
    assert actual_time == pytest.approx(predicted_time, abs=config.edge_epoch + 1e-9)


def test_slow_start_exit_rate_brackets_normalized_threshold():
    """The exit normalized rate lands in (ss_thresh/2, ss_thresh] — where
    the powers of two fall for the weight decides the exact point."""
    config = CoreliteConfig()
    for weight in (1.0, 2.0, 3.0, 4.0, 5.0):
        _t, rate = slow_start_exit(config, weight)
        assert config.ss_thresh / 2.0 < rate / weight <= config.ss_thresh


def test_slow_start_pinned_at_max_rate_never_exits_by_threshold():
    config = CoreliteConfig(max_rate=10.0)
    t, rate = slow_start_exit(config, weight=1.0)
    assert t == math.inf
    assert rate == 10.0


def test_linear_climb_time_matches_controller():
    config = CoreliteConfig()
    c = RateController(config, weight=1.0)
    c.on_epoch(1, 0.1)  # force linear
    start = c.rate
    target = start + 10.0
    predicted = linear_climb_time(config, start, target)
    t = 0.1
    while c.rate < target:
        t += config.edge_epoch
        c.on_epoch(0, t)
    assert (t - 0.1) == pytest.approx(predicted, abs=config.edge_epoch + 1e-9)


def test_linear_climb_time_validation():
    config = CoreliteConfig()
    with pytest.raises(ConfigurationError):
        linear_climb_time(config, 10.0, 5.0)


def test_oscillation_band_brackets_fair_rate():
    config = CoreliteConfig()
    lo, hi = oscillation_band(config, fair_rate=50.0, feedback_per_event=2.0)
    assert lo < 50.0 < hi
    assert lo >= 0.0


def test_feedback_latency_components():
    config = CoreliteConfig()
    lat = feedback_latency(config, reverse_path_delay=0.08)
    assert lat == pytest.approx(2 * 0.1 + 0.08 + 0.3)


def test_throttle_authority_scales_with_beta_and_supply():
    config = CoreliteConfig()
    base = throttle_authority(config, total_normalized_rate=167.0)
    double_beta = throttle_authority(
        CoreliteConfig(beta=2.0), total_normalized_rate=167.0
    )
    assert double_beta == pytest.approx(2 * base)
    assert throttle_authority(config, 0.0) == 0.0


class TestLoopBudget:
    def test_default_config_is_stable_for_the_paper_workloads(self):
        """At edge_epoch=0.3 the §4.2 link (Σ bg/w = 167) has authority
        above the 10-flow increase pressure — the regime with few drops."""
        config = CoreliteConfig()
        budget = loop_budget(
            config, num_flows=10, total_normalized_rate=167.0, reverse_path_delay=0.08
        )
        assert budget.stable

    def test_paper_naive_edge_epoch_is_unstable(self):
        """At edge_epoch=0.1 the same link is pressure-dominated — this is
        exactly the limit cycle DESIGN.md §9 documents."""
        config = CoreliteConfig(edge_epoch=0.1)
        budget = loop_budget(
            config, num_flows=10, total_normalized_rate=167.0, reverse_path_delay=0.08
        )
        assert not budget.stable

    def test_overshoot_grows_with_latency(self):
        fast = loop_budget(CoreliteConfig(core_epoch=0.05), 10, 167.0, 0.08)
        slow = loop_budget(CoreliteConfig(core_epoch=0.4), 10, 167.0, 0.08)
        assert slow.overshoot_packets > fast.overshoot_packets

    def test_validation(self):
        config = CoreliteConfig()
        with pytest.raises(ConfigurationError):
            loop_budget(config, 0, 100.0, 0.0)
        with pytest.raises(ConfigurationError):
            throttle_authority(config, -1.0)
        with pytest.raises(ConfigurationError):
            feedback_latency(config, -0.1)
        with pytest.raises(ConfigurationError):
            oscillation_band(config, 0.0)
