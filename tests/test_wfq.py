"""Unit and integration tests for the WFQ (SCFQ) reference scheduler."""

import pytest

from repro.aqm.wfq import WfqQueue
from repro.errors import ConfigurationError
from repro.core.shaping import PacedSender
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet


def data(flow, seq=0):
    return Packet.data(flow, "A", "B", seq=seq, now=0.0)


class TestScheduling:
    def test_single_flow_is_fifo(self):
        q = WfqQueue(capacity=100)
        for i in range(5):
            q.push(data(1, seq=i), 0.0)
        assert [q.pop(0.0).seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_equal_weights_interleave(self):
        q = WfqQueue(capacity=100)
        for i in range(3):
            q.push(data(1, seq=i), 0.0)
        for i in range(3):
            q.push(data(2, seq=i), 0.0)
        order = [q.pop(0.0).flow_id for _ in range(6)]
        # flow 2's backlog is served interleaved, not after flow 1's.
        assert order != [1, 1, 1, 2, 2, 2]
        assert order.count(1) == order.count(2) == 3

    def test_heavier_flow_served_proportionally_more(self):
        weights = {1: 1.0, 2: 3.0}
        q = WfqQueue(capacity=1000, weight_of=lambda f: weights[f])
        for i in range(100):
            q.push(data(1, seq=i), 0.0)
            q.push(data(2, seq=i), 0.0)
        first_40 = [q.pop(0.0).flow_id for _ in range(40)]
        assert first_40.count(2) == pytest.approx(30, abs=3)
        assert first_40.count(1) == pytest.approx(10, abs=3)

    def test_idle_flow_does_not_bank_credit(self):
        q = WfqQueue(capacity=1000)
        # flow 1 is served alone for a while...
        for i in range(10):
            q.push(data(1, seq=i), 0.0)
        for _ in range(10):
            q.pop(0.0)
        # ...then flow 2 arrives: it must not get 10 packets of catch-up.
        for i in range(4):
            q.push(data(1, seq=100 + i), 0.0)
            q.push(data(2, seq=i), 0.0)
        order = [q.pop(0.0).flow_id for _ in range(8)]
        assert order[:2].count(2) <= 1  # interleaved, not a flood of 2s

    def test_capacity_tail_drop(self):
        q = WfqQueue(capacity=3)
        outcomes = [q.push(data(1, seq=i), 0.0) for i in range(5)]
        assert outcomes == [True, True, True, False, False]
        assert q.stats.dropped_data == 2

    def test_per_flow_state_exists_only_while_backlogged(self):
        q = WfqQueue(capacity=10)
        q.push(data(1), 0.0)
        q.push(data(2), 0.0)
        assert q.per_flow_state_size == 2
        q.pop(0.0)
        q.pop(0.0)
        q.pop(0.0)  # empty pop clears the state
        assert q.per_flow_state_size == 0

    def test_invalid_weight_rejected(self):
        q = WfqQueue(capacity=10, weight_of=lambda f: 0.0)
        with pytest.raises(ConfigurationError):
            q.push(data(1), 0.0)

    def test_backlog_of(self):
        q = WfqQueue(capacity=10)
        q.push(data(1), 0.0)
        q.push(data(1, seq=1), 0.0)
        q.push(data(2), 0.0)
        assert q.backlog_of(1) == 2
        assert q.backlog_of(2) == 1


class TestWfqOnALink:
    def test_backlogged_senders_receive_weighted_service(self):
        """The Intserv reference behavior: greedy (non-adaptive) senders
        get service exactly proportional to their weights."""
        sim = Simulator()
        weights = {1: 1.0, 2: 2.0, 3: 5.0}

        class Sink(Node):
            def __init__(self):
                super().__init__("B")
                self.got = {f: 0 for f in weights}

            def receive(self, packet, link):
                self.got[packet.flow_id] += 1

        sink = Sink()
        link = Link(
            sim, "A->B", "A", sink, bandwidth_pps=100.0, prop_delay=0.0,
            queue=WfqQueue(capacity=60, weight_of=lambda f: weights[f]),
        )

        # Each sender offers 100 pps — 3x oversubscription.  The emit
        # callback returns True even when the queue drops the packet: the
        # sender did transmit (False would tell the shaper to park).
        def make_emit(flow):
            def emit():
                link.send(Packet.data(flow, "A", "B", seq=0, now=sim.now))
                return True

            return emit

        senders = [PacedSender(sim, 100.0, emit=make_emit(f)) for f in weights]
        for s in senders:
            s.start()
        sim.run(until=30.0)

        total = sum(sink.got.values())
        for flow, weight in weights.items():
            share = sink.got[flow] / total
            assert share == pytest.approx(weight / 8.0, abs=0.03), sink.got
