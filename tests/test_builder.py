"""Unit tests for the spec-driven cloud builder (layer 2 of the
pipeline): strategies, validation, and — crucially — event-for-event
equivalence with the historical harness classes on chain topologies."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.experiments.builder import (
    Cloud,
    CloudBuilder,
    CoreliteStrategy,
    CsfqStrategy,
    FifoStrategy,
    SCHEME_STRATEGIES,
)
from repro.experiments.network import (
    CoreliteNetwork,
    CsfqNetwork,
    FifoLossNetwork,
    FlowSpec,
)
from repro.experiments.topospec import LinkSpec, TopologySpec


def two_flow_specs():
    return [
        FlowSpec(flow_id=1, weight=1.0, ingress_core="C1", egress_core="C4"),
        FlowSpec(flow_id=2, weight=2.0, ingress_core="C2", egress_core="C3"),
    ]


def series_fingerprint(result):
    return {
        fid: (list(rec.rate_series), list(rec.throughput_series))
        for fid, rec in result.flows.items()
    }


class TestEquivalenceWithLegacyHarness:
    """A same-seed chain run must be identical through either front door:
    the refactor moved the wiring, not the behavior."""

    @pytest.mark.parametrize(
        "legacy_cls, scheme",
        [(CoreliteNetwork, "corelite"), (CsfqNetwork, "csfq"), (FifoLossNetwork, "fifo")],
    )
    def test_chain_runs_match_exactly(self, legacy_cls, scheme):
        legacy = legacy_cls(num_cores=4, seed=3)
        for spec in two_flow_specs():
            legacy.add_flow(spec)
        legacy_result = legacy.run(until=12.0)

        builder = CloudBuilder(TopologySpec.chain(4), scheme=scheme, seed=3)
        builder.add_flows(two_flow_specs())
        new_result = builder.run(until=12.0)

        assert series_fingerprint(new_result) == series_fingerprint(legacy_result)
        assert new_result.total_drops == legacy_result.total_drops

    def test_legacy_class_is_a_cloud(self):
        net = CoreliteNetwork(num_cores=2, seed=0)
        assert isinstance(net, Cloud)
        assert net.scheme == "corelite"


class TestStrategies:
    def test_scheme_registry(self):
        assert SCHEME_STRATEGIES == {
            "corelite": CoreliteStrategy,
            "csfq": CsfqStrategy,
            "fifo": FifoStrategy,
        }

    def test_strategy_binds_to_one_cloud_only(self):
        strategy = CoreliteStrategy()
        Cloud(TopologySpec.chain(2), strategy, seed=0)
        with pytest.raises(ConfigurationError, match="one cloud"):
            Cloud(TopologySpec.chain(2), strategy, seed=0)

    def test_wrong_config_type_rejected(self):
        from repro.csfq.config import CsfqConfig

        with pytest.raises(ConfigurationError, match="CoreliteConfig"):
            CoreliteStrategy(CsfqConfig())

    def test_csfq_rejects_min_rate_contracts(self):
        builder = CloudBuilder(TopologySpec.chain(2), scheme="csfq")
        builder.add_flow(flow_id=1, min_rate=50.0)
        with pytest.raises(ConfigurationError, match="min_rate"):
            builder.build()


class TestCloudValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="quantum"):
            CloudBuilder(TopologySpec.chain(2), scheme="quantum")

    def test_unknown_ingress_core_named_in_error(self):
        builder = CloudBuilder(TopologySpec.chain(2), scheme="corelite")
        builder.add_flow(flow_id=1, ingress_core="C7", egress_core="C2")
        with pytest.raises(
            TopologyError, match=r"flow 1: ingress_core='C7'.*chain-2"
        ):
            builder.build()

    def test_unroutable_flow_named_at_finalize(self):
        # Two disconnected islands: A-B and X-Y.
        spec = TopologySpec(
            links=(LinkSpec("A", "B", 500.0, 0.02), LinkSpec("X", "Y", 500.0, 0.02)),
            name="islands",
        )
        builder = CloudBuilder(spec, scheme="corelite")
        builder.add_flow(flow_id=1, ingress_core="A", egress_core="Y")
        with pytest.raises(TopologyError, match=r"flow 1: no route.*'A'.*'Y'.*islands"):
            builder.build()

    def test_flows_after_finalize_rejected(self):
        builder = CloudBuilder(TopologySpec.chain(2), scheme="corelite")
        builder.add_flow(flow_id=1)
        cloud = builder.build()
        with pytest.raises(ConfigurationError, match="finalize"):
            cloud.add_flow(FlowSpec(flow_id=2))

    def test_no_flows_rejected(self):
        with pytest.raises(ConfigurationError, match="no flows"):
            CloudBuilder(TopologySpec.chain(2), scheme="corelite").build()

    def test_core_router_rejects_non_core(self):
        builder = CloudBuilder(TopologySpec.chain(2), scheme="corelite")
        builder.add_flow(flow_id=1)
        cloud = builder.build()
        assert cloud.core_router("C1") is cloud.topology.nodes["C1"]
        with pytest.raises(TopologyError, match="Ein1"):
            cloud.core_router("Ein1")


class TestReferenceRates:
    def test_single_bottleneck_weighted_split(self):
        builder = CloudBuilder(TopologySpec.chain(2), scheme="corelite")
        builder.add_flow(flow_id=1, weight=1.0)
        builder.add_flow(flow_id=2, weight=3.0)
        cloud = builder.build()
        ref = cloud.reference_rates()
        assert ref[1] == pytest.approx(125.0)
        assert ref[2] == pytest.approx(375.0)

    def test_mesh_reference_matches_analytic_levels(self):
        from repro.experiments.scenarios import mesh_flows

        builder = CloudBuilder(TopologySpec.mesh(), scheme="corelite")
        builder.add_flows(mesh_flows())
        ref = builder.build().reference_rates()
        expected = {
            1: 250.0, 2: 250.0, 3: 125.0, 4: 125.0,
            5: 250.0, 6: 125.0, 7: 125.0,
            8: 250.0, 9: 250.0,
            10: 125.0, 11: 125.0, 12: 125.0,
        }
        for fid, rate in expected.items():
            assert ref[fid] == pytest.approx(rate), fid

    def test_parking_lot_reference(self):
        from repro.experiments.scenarios import parking_lot_flows

        builder = CloudBuilder(TopologySpec.parking_lot(3), scheme="corelite")
        builder.add_flows(parking_lot_flows())
        ref = builder.build().reference_rates()
        assert ref[1] == pytest.approx(250.0)
        for fid in range(2, 8):
            assert ref[fid] == pytest.approx(125.0)
