"""Cross-cutting property-based tests (hypothesis).

Conservation laws and invariants that must hold for *any* workload:
packets are never created or destroyed except by explicit drops, queues
never go negative, schedulers serve in proportion to weights, the engine
executes in time order, and the controllers stay inside their bounds.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqm.wfq import WfqQueue
from repro.core.config import CoreliteConfig
from repro.core.selective_feedback import SelectiveFeedback
from repro.experiments.network import CoreliteNetwork, FlowSpec
from repro.fairness.maxmin import (
    FlowDemand,
    weighted_maxmin,
    weighted_maxmin_with_minimums,
)
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


# ---------------------------------------------------------------------------
# Engine ordering
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_engine_executes_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    # each event fired exactly at its requested time
    assert all(t == pytest.approx(d) for t, d in fired)


# ---------------------------------------------------------------------------
# Queue conservation
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop"]), st.integers(1, 5)),
        min_size=1,
        max_size=300,
    ),
    st.integers(1, 20),
)
@settings(max_examples=50, deadline=None)
def test_droptail_conservation(ops, capacity):
    q = DropTailQueue(capacity)
    seq = 0
    popped = 0
    for op, flow in ops:
        if op == "push":
            q.push(Packet.data(flow, "A", "B", seq=seq, now=0.0), 0.0)
            seq += 1
        else:
            if q.pop(0.0) is not None:
                popped += 1
    stats = q.stats
    assert stats.enqueued_data == stats.dequeued_data + q.occupancy
    assert stats.enqueued_data + stats.dropped_data == seq
    assert 0 <= q.occupancy <= capacity
    assert popped == stats.dequeued_data


@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop"]), st.integers(1, 5)),
        min_size=1,
        max_size=300,
    ),
    st.integers(2, 20),
)
@settings(max_examples=50, deadline=None)
def test_wfq_conservation_and_bounds(ops, capacity):
    weights = {f: float(f) for f in range(1, 6)}
    q = WfqQueue(capacity, weight_of=lambda f: weights[f])
    seq = 0
    for op, flow in ops:
        if op == "push":
            q.push(Packet.data(flow, "A", "B", seq=seq, now=0.0), 0.0)
            seq += 1
        else:
            q.pop(0.0)
    stats = q.stats
    assert stats.enqueued_data == stats.dequeued_data + q.occupancy + q.stolen
    assert 0 <= q.occupancy <= capacity
    assert len(q) >= 0


@given(st.lists(st.floats(0.5, 8.0), min_size=2, max_size=6), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_wfq_service_proportional_to_weights(weights, seed):
    """With every flow permanently backlogged, SCFQ service shares match
    the weights for any weight vector."""
    wmap = {i: w for i, w in enumerate(weights, start=1)}
    q = WfqQueue(capacity=10 * len(weights), weight_of=lambda f: wmap[f])
    rng = random.Random(seed)
    served = {f: 0 for f in wmap}
    seq = 0
    rounds = 400
    for _ in range(rounds):
        for f in wmap:
            q.push(Packet.data(f, "A", "B", seq=seq, now=0.0), 0.0)
            seq += 1
        p = q.pop(0.0)
        if p:
            served[p.flow_id] += 1
    total_w = sum(wmap.values())
    total_served = sum(served.values())
    for f, w in wmap.items():
        expected = total_served * w / total_w
        assert served[f] == pytest.approx(expected, abs=max(4.0, 0.12 * expected)), (
            served,
            wmap,
        )


# ---------------------------------------------------------------------------
# Link conservation
# ---------------------------------------------------------------------------


@given(st.integers(1, 200), st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_link_conserves_packets(n_packets, capacity):
    sim = Simulator()

    class Sink(Node):
        def __init__(self):
            super().__init__("B")
            self.count = 0

        def receive(self, packet, link):
            self.count += 1

    sink = Sink()
    link = Link(sim, "A->B", "A", sink, 100.0, 0.01, DropTailQueue(capacity))
    for i in range(n_packets):
        link.send(Packet.data(1, "A", "B", seq=i, now=0.0))
    sim.run()
    dropped = link.queue.stats.dropped_data
    assert sink.count + dropped == n_packets
    assert link.queue.occupancy == 0


# ---------------------------------------------------------------------------
# Selective feedback invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(0.1, 100.0), min_size=1, max_size=400),
    st.integers(0, 30),
    st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_selective_feedback_invariants(labels, fn, seed):
    sent = []
    sel = SelectiveFeedback(
        CoreliteConfig(), random.Random(seed), emit=lambda f, e, l: sent.append(l)
    )
    # one warmup epoch to seed wav, then an armed epoch
    for label in labels:
        sel.observe(1, "E", label, 0.0)
    sel.on_epoch(fn, 0.1)
    for label in labels:
        sel.observe(1, "E", label, 0.2)
        assert sel.deficit >= 0
    # never echo more markers than were observed in the armed epoch
    assert len(sent) <= len(labels)
    # every echoed label was at or above the running average at echo time;
    # weaker check (rav moves): echoed labels are never the global minimum
    # unless all labels are equal.
    if sent and len(set(labels)) > 1:
        assert max(sent) >= min(labels)


# ---------------------------------------------------------------------------
# Max-min with minimum contracts
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(0.5, 5.0), min_size=1, max_size=8),
    st.floats(50.0, 1000.0),
    st.integers(0, 10_000),
)
@settings(max_examples=50, deadline=None)
def test_maxmin_with_minimums_honors_contracts(weights, capacity, seed):
    rng = random.Random(seed)
    flows = [FlowDemand(i, w, ("L",)) for i, w in enumerate(weights)]
    # admissible contracts: at most 80% of capacity in total
    budget = 0.8 * capacity
    minimums = {}
    for flow in flows:
        share = rng.uniform(0, budget / len(flows))
        minimums[flow.flow_id] = share
    alloc = weighted_maxmin_with_minimums({"L": capacity}, flows, minimums)
    # contracts honored
    for fid, floor in minimums.items():
        assert alloc[fid] >= floor - 1e-6
    # feasible
    assert sum(alloc.values()) <= capacity * (1 + 1e-6)
    # work conserving: full capacity is handed out (all demands infinite)
    assert sum(alloc.values()) == pytest.approx(capacity, rel=1e-6)


# ---------------------------------------------------------------------------
# Weighted max-min feasibility (reference allocator, arbitrary topologies)
# ---------------------------------------------------------------------------


@st.composite
def _maxmin_instance(draw):
    """A random multi-link network with random flow paths/weights/demands."""
    n_links = draw(st.integers(1, 5))
    capacities = {
        f"L{i}": draw(st.floats(10.0, 1000.0)) for i in range(n_links)
    }
    n_flows = draw(st.integers(1, 8))
    flows = []
    for fid in range(n_flows):
        # a contiguous segment of the link chain (possibly empty path)
        start = draw(st.integers(0, n_links - 1))
        stop = draw(st.integers(start, n_links))
        links = tuple(f"L{i}" for i in range(start, stop))
        demand = draw(
            st.one_of(st.just(math.inf), st.floats(1.0, 500.0))
        )
        if not links and math.isinf(demand):
            demand = draw(st.floats(1.0, 500.0))
        weight = draw(st.floats(0.25, 8.0))
        flows.append(FlowDemand(fid, weight, links, demand))
    return capacities, flows


@given(_maxmin_instance())
@settings(max_examples=100, deadline=None)
def test_maxmin_allocation_never_exceeds_any_link_capacity(instance):
    """The reference allocator always produces a *feasible* allocation:
    on every link, the sum of the rates of the flows crossing it stays
    within the link's capacity, and no flow exceeds its demand."""
    capacities, flows = instance
    alloc = weighted_maxmin(capacities, flows)
    assert set(alloc) == {flow.flow_id for flow in flows}
    for flow in flows:
        assert alloc[flow.flow_id] >= 0.0
        assert alloc[flow.flow_id] <= flow.demand * (1 + 1e-9)
    for link, cap in capacities.items():
        load = sum(
            alloc[flow.flow_id] for flow in flows if link in flow.links
        )
        assert load <= cap * (1 + 1e-9), (link, load, cap)


# ---------------------------------------------------------------------------
# End-to-end packet conservation in a full Corelite network
# ---------------------------------------------------------------------------


class _FlowCountingQueue(DropTailQueue):
    """Drop-tail queue that attributes every data-packet drop to its flow."""

    def __init__(self, capacity: float):
        super().__init__(capacity)
        self.dropped_by_flow = {}

    def push(self, packet, now):
        admitted = super().push(packet, now)
        if not admitted:
            self.dropped_by_flow[packet.flow_id] = (
                self.dropped_by_flow.get(packet.flow_id, 0) + 1
            )
        return admitted


@st.composite
def _small_cloud(draw):
    """A random small Corelite cloud plus a random flow set."""
    num_cores = draw(st.integers(2, 3))
    capacity = draw(st.floats(60.0, 200.0))
    # CoreliteConfig requires its congestion threshold (qthresh = 8) to sit
    # below the queue capacity, so stay above it.
    queue_cap = draw(st.integers(10, 25))
    seed = draw(st.integers(0, 2**16))
    n_flows = draw(st.integers(1, 4))
    flows = []
    for fid in range(1, n_flows + 1):
        pair = draw(
            st.tuples(
                st.integers(1, num_cores), st.integers(1, num_cores)
            ).filter(lambda p: p[0] != p[1])
        )
        flows.append(
            FlowSpec(
                flow_id=fid,
                weight=draw(st.floats(0.5, 4.0)),
                ingress_core=f"C{pair[0]}",
                egress_core=f"C{pair[1]}",
                schedule=((0.0, 4.0),),
            )
        )
    return num_cores, capacity, queue_cap, seed, flows


@given(_small_cloud())
@settings(max_examples=15, deadline=None)
def test_per_flow_packet_conservation(cloud):
    """For any small topology / weight vector, every emitted data packet
    is either delivered at the egress edge or dropped by exactly one
    queue: ``delivered + dropped == injected``, per flow.

    Flows stop at t=4 and the network then drains completely, so there
    is no in-flight remainder to account for.  Queue drops are attributed
    per flow by a recording drop-tail subclass; feedback markers are
    size-0 control packets and never enter the data accounting.
    """
    num_cores, capacity, queue_cap, seed, flows = cloud
    queues = []

    def factory():
        q = _FlowCountingQueue(capacity=float(queue_cap))
        queues.append(q)
        return q

    net = CoreliteNetwork(
        num_cores=num_cores,
        core_capacity_pps=capacity,
        access_capacity_pps=capacity,
        queue_capacity=float(queue_cap),
        seed=seed,
        queue_factory=factory,
    )
    net.add_flows(flows)
    net.run(until=8.0)  # flows stop at 4.0; 4 s of drain is ample

    for spec in flows:
        fid = spec.flow_id
        emitted = net.edges[spec.ingress_edge]._ingress_state(fid).seq
        delivered = net.edges[spec.egress_edge].delivered(fid)
        dropped = sum(q.dropped_by_flow.get(fid, 0) for q in queues)
        assert emitted == delivered + dropped, (
            fid,
            emitted,
            delivered,
            dropped,
        )
        assert emitted > 0  # the flow really ran

    # no data packet is still buffered anywhere after the drain
    assert all(q.occupancy == 0 for q in queues)
