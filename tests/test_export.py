"""Tests for CSV/JSON export of run results."""

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork, FlowSpec
from repro.experiments.report import save_result_json, save_series_csv
from repro.sim.monitor import Series


@pytest.fixture(scope="module")
def small_result():
    net = CoreliteNetwork.single_bottleneck(seed=0)
    net.add_flow(FlowSpec(flow_id=1, weight=1.0))
    net.add_flow(FlowSpec(flow_id=2, weight=2.0, schedule=((0.0, 8.0),)))
    return net.run(until=10.0, record_queues=True)


class TestCsv:
    def test_round_trip(self, tmp_path):
        a = Series("a")
        b = Series("b")
        for t in range(5):
            a.append(float(t), t * 1.0)
        for t in range(0, 5, 2):
            b.append(float(t), t * 10.0)
        path = tmp_path / "out.csv"
        rows = save_series_csv(str(path), {"a": a, "b": b})
        assert rows == 5
        with open(path) as fh:
            reader = list(csv.reader(fh))
        assert reader[0] == ["time", "a", "b"]
        assert reader[1] == ["0", "0", "0"]
        assert reader[2][2] == ""  # b has no sample at t=1

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_series_csv(str(tmp_path / "x.csv"), {})

    def test_export_run_series(self, tmp_path, small_result):
        path = tmp_path / "rates.csv"
        series = {
            f"flow{fid}": small_result.flows[fid].rate_series
            for fid in small_result.flow_ids
        }
        rows = save_series_csv(str(path), series)
        assert rows == len(small_result.flows[1].rate_series)


class TestJson:
    def test_full_result_round_trip(self, tmp_path, small_result):
        path = tmp_path / "run.json"
        save_result_json(str(path), small_result)
        payload = json.loads(path.read_text())
        assert payload["scheme"] == "corelite"
        assert payload["total_drops"] == small_result.total_drops
        flow1 = payload["flows"]["1"]
        assert flow1["weight"] == 1.0
        assert flow1["schedule"] == [[0.0, None]]  # inf serialized as null
        assert len(flow1["rate_series"]) == len(small_result.flows[1].rate_series)
        flow2 = payload["flows"]["2"]
        assert flow2["schedule"] == [[0.0, 8.0]]
        assert "C1->C2" in payload["queue_series"]
        assert flow1["delay"]["count"] > 0
