"""Re-convergence regression suite: fairness after a topology event.

The paper's evaluation is static; these tests pin the natural follow-on
claim — after a mid-run link failure forces a reroute, Corelite's
edge-to-edge feedback re-converges to the *post-event* weighted max-min
allocation (reference-normalized Jain >= 0.9) within a bounded
sim-time budget, under both feedback schemes.  CSFQ must survive the
same event without error (its re-convergence quality is a comparison
result, not a gate).  Also unit-tests the metric family itself.
"""

from __future__ import annotations

import pytest

from repro.core.config import CoreliteConfig, FeedbackScheme
from repro.errors import ConfigurationError
from repro.experiments.builder import CloudBuilder
from repro.experiments.topospec import FlowPathSpec, TopologySpec
from repro.fairness.metrics import (
    reconvergence_time,
    transient_dip,
    weighted_jain_series,
)
from repro.sim.dynamics import NetworkEvent
from repro.sim.monitor import Series


EVENT_TIME = 40.0
DURATION = 120.0
#: Re-convergence budget after the event (seconds of sim time).  The
#: selective scheme settles in ~15 s; marker-cache needs ~40 s (its
#: cached labels age out before the post-event levels take hold).
BUDGET = 60.0


def _failover_flows():
    return [
        FlowPathSpec(flow_id=1, weight=2.0, ingress_core="A", egress_core="D"),
        FlowPathSpec(flow_id=2, weight=1.0, ingress_core="A", egress_core="B"),
        FlowPathSpec(flow_id=3, weight=1.0, ingress_core="A", egress_core="B"),
        FlowPathSpec(flow_id=4, weight=2.0, ingress_core="A", egress_core="C"),
        FlowPathSpec(flow_id=5, weight=1.0, ingress_core="B", egress_core="D"),
        FlowPathSpec(flow_id=6, weight=1.0, ingress_core="C", egress_core="D"),
        FlowPathSpec(flow_id=7, weight=1.0, ingress_core="B", egress_core="C"),
    ]


def _run_failover(scheme, *, config=None, seed=7):
    spec = TopologySpec.mesh(
        events=(NetworkEvent(time=EVENT_TIME, kind="link_down", a="A", b="B"),)
    )
    builder = CloudBuilder(spec, scheme=scheme, seed=seed, config=config)
    builder.add_flows(_failover_flows())
    cloud = builder.build()
    result = cloud.run(until=DURATION)
    series = {fid: result.record(fid).throughput_series for fid in result.flow_ids}
    return result, series


class TestCoreliteReconvergence:
    @pytest.mark.parametrize(
        "feedback",
        [FeedbackScheme.SELECTIVE, FeedbackScheme.MARKER_CACHE],
        ids=["selective", "marker_cache"],
    )
    def test_jain_recovers_within_budget(self, feedback):
        result, series = _run_failover(
            "corelite", config=CoreliteConfig(feedback_scheme=feedback)
        )
        reference = result.dynamics["post_reference"]
        settle = reconvergence_time(
            series, reference, EVENT_TIME, threshold=0.9, hold=10.0
        )
        assert settle is not None, "never re-converged to 0.9 reference Jain"
        assert settle <= BUDGET, f"re-converged in {settle:.1f}s > {BUDGET:.0f}s"

    def test_reroute_happened_and_was_counted(self):
        result, _ = _run_failover("corelite")
        assert result.dynamics["reroutes"] == 1
        assert [e["kind"] for e in result.dynamics["events"]] == ["link_down"]
        assert result.dynamics["failure_drops"] >= 0

    def test_transient_dip_is_bounded(self):
        """The failure dents aggregate delivery but must not collapse it:
        every flow pair stays connected through the detour."""
        _, series = _run_failover("corelite")
        dip = transient_dip(series, EVENT_TIME)
        assert 0.3 <= dip <= 1.5

    def test_post_reference_matches_live_recomputation(self):
        result, _ = _run_failover("corelite")
        reference = result.dynamics["post_reference"]
        assert set(reference) == {1, 2, 3, 4, 5, 6, 7}
        assert all(rate >= 0.0 for rate in reference.values())
        # A-B traffic survives via the detour: nobody is partitioned.
        assert all(rate > 0.0 for rate in reference.values())


class TestCsfqComparison:
    def test_csfq_survives_the_same_failover(self):
        """CSFQ is the comparison scheme: the identical event schedule
        must run to completion and keep delivering after the reroute."""
        result, series = _run_failover("csfq")
        assert result.dynamics["reroutes"] == 1
        tail = {
            fid: s.window(DURATION - 20.0, DURATION) for fid, s in series.items()
        }
        assert all(min(w.values) >= 0.0 for w in tail.values())
        assert sum(w.mean() for w in tail.values()) > 0.0


# ---------------------------------------------------------------------------
# Metric unit tests
# ---------------------------------------------------------------------------


def _series(name, samples):
    out = Series(name)
    for t, v in samples:
        out.append(t, v)
    return out


def test_weighted_jain_series_perfect_allocation_scores_one():
    series = {
        1: _series("f1", [(0.0, 100.0), (1.0, 100.0)]),
        2: _series("f2", [(0.0, 200.0), (1.0, 200.0)]),
    }
    jain = weighted_jain_series(series, {1: 100.0, 2: 200.0})
    assert list(jain.values) == [1.0, 1.0]


def test_weighted_jain_series_excludes_zero_weight_flows():
    series = {
        1: _series("f1", [(0.0, 100.0)]),
        2: _series("f2", [(0.0, 0.0)]),
    }
    jain = weighted_jain_series(series, {1: 100.0, 2: 0.0})
    assert list(jain.values) == [1.0]


def test_weighted_jain_series_rejects_misaligned_grids():
    series = {
        1: _series("f1", [(0.0, 1.0), (1.0, 1.0)]),
        2: _series("f2", [(0.0, 1.0), (2.0, 1.0)]),
    }
    with pytest.raises(ConfigurationError):
        weighted_jain_series(series, {1: 1.0, 2: 1.0})


def test_reconvergence_time_finds_the_settle_point():
    # Unfair until t=5, fair (and holding) from t=5 on.
    series = {
        1: _series("f1", [(t, 100.0 if t >= 5 else 10.0) for t in range(11)]),
        2: _series("f2", [(t, 100.0) for t in range(11)]),
    }
    reference = {1: 100.0, 2: 100.0}
    assert reconvergence_time(series, reference, event_time=2.0) == 3.0


def test_reconvergence_time_none_when_never_settling():
    series = {
        1: _series("f1", [(t, 10.0) for t in range(11)]),
        2: _series("f2", [(t, 100.0) for t in range(11)]),
    }
    assert reconvergence_time(series, {1: 100.0, 2: 100.0}, 0.0) is None


def test_reconvergence_time_respects_hold():
    # Settles at the very last sample: a 5s hold cannot be satisfied.
    series = {
        1: _series("f1", [(0.0, 10.0), (1.0, 10.0), (2.0, 100.0)]),
        2: _series("f2", [(0.0, 100.0), (1.0, 100.0), (2.0, 100.0)]),
    }
    reference = {1: 100.0, 2: 100.0}
    assert reconvergence_time(series, reference, 0.0) == 2.0
    assert reconvergence_time(series, reference, 0.0, hold=5.0) is None


def test_reconvergence_time_rejects_bad_threshold():
    series = {1: _series("f1", [(0.0, 1.0)])}
    with pytest.raises(ConfigurationError):
        reconvergence_time(series, {1: 1.0}, 0.0, threshold=0.0)
    with pytest.raises(ConfigurationError):
        reconvergence_time(series, {1: 1.0}, 0.0, threshold=1.5)


def test_transient_dip_measures_worst_post_event_sample():
    series = {
        1: _series("f1", [(0.0, 100.0), (1.0, 100.0), (2.0, 40.0), (3.0, 90.0)]),
    }
    assert transient_dip(series, event_time=1.5, baseline_window=2.0) == pytest.approx(0.4)


def test_transient_dip_needs_pre_event_samples():
    series = {1: _series("f1", [(5.0, 100.0)])}
    with pytest.raises(ConfigurationError):
        transient_dip(series, event_time=1.0)
