"""Tests for the declarative scenario DSL."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork, CsfqNetwork, FifoLossNetwork
from repro.experiments.scenario_dsl import (
    build_network,
    load_scenario_file,
    run_scenario,
)


def basic_scenario(**overrides):
    scenario = {
        "scheme": "corelite",
        "seed": 1,
        "duration": 10.0,
        "flows": [
            {"id": 1, "weight": 1.0},
            {"id": 2, "weight": 2.0},
        ],
    }
    scenario.update(overrides)
    return scenario


class TestBuild:
    def test_default_corelite_two_cores(self):
        net = build_network(basic_scenario())
        assert isinstance(net, CoreliteNetwork)
        assert net.core_names == ["C1", "C2"]
        assert set(net.flows) == {1, 2}
        assert net.seed == 1

    def test_scheme_selection(self):
        assert isinstance(build_network(basic_scenario(scheme="csfq")), CsfqNetwork)
        assert isinstance(build_network(basic_scenario(scheme="fifo")), FifoLossNetwork)
        with pytest.raises(ConfigurationError):
            build_network(basic_scenario(scheme="quantum"))

    def test_network_parameters(self):
        net = build_network(basic_scenario(network={"num_cores": 3,
                                                    "core_capacity_pps": 250.0}))
        assert net.core_names == ["C1", "C2", "C3"]
        assert net.topology.links["C1->C2"].bandwidth_pps == 250.0

    def test_core_links_graph(self):
        scenario = basic_scenario(
            network={"core_links": [["H", "A", 500, 0.02], ["H", "B", 500, 0.02]]},
            flows=[{"id": 1, "ingress": "A", "egress": "B"}],
        )
        net = build_network(scenario)
        assert set(net.core_names) == {"H", "A", "B"}

    def test_config_fields(self):
        net = build_network(basic_scenario(config={"edge_epoch": 0.2, "qthresh": 4.0}))
        assert net.config.edge_epoch == 0.2
        assert net.config.qthresh == 4.0

    def test_feedback_scheme_by_name(self):
        net = build_network(basic_scenario(config={"feedback_scheme": "marker_cache"}))
        assert net.config.feedback_scheme.value == "marker_cache"

    def test_schedule_with_null_stop(self):
        scenario = basic_scenario(
            flows=[{"id": 1, "schedule": [[5, 20], [30, None]]}]
        )
        net = build_network(scenario)
        assert net.flows[1].schedule == ((5.0, 20.0), (30.0, math.inf))

    def test_sources_and_transport(self):
        scenario = basic_scenario(flows=[
            {"id": 1, "source": {"kind": "poisson", "mean_rate": 60}},
            {"id": 2, "source": {"kind": "onoff", "peak_rate": 300,
                                 "mean_on": 0.5, "mean_off": 1.0}},
            {"id": 3, "source": {"kind": "transfer", "total_packets": 100,
                                 "peak_rate": 50}},
            {"id": 4, "transport": "tcp"},
        ])
        net = build_network(scenario)
        assert net.flows[1].source.kind == "poisson"
        assert net.flows[3].source.total_packets == 100
        assert net.flows[4].transport == "tcp"

    def test_micro_flows(self):
        scenario = basic_scenario(flows=[
            {"id": 1, "micro_flows": [
                [1, {"kind": "poisson", "mean_rate": 100}],
                [2, {"kind": "poisson", "mean_rate": 100}],
            ]},
        ])
        net = build_network(scenario)
        assert len(net.flows[1].micro_flows) == 2

    def test_unknown_keys_rejected_everywhere(self):
        with pytest.raises(ConfigurationError):
            build_network(basic_scenario(tyop=1))
        with pytest.raises(ConfigurationError):
            build_network(basic_scenario(network={"cores": 3}))
        with pytest.raises(ConfigurationError):
            build_network(basic_scenario(flows=[{"id": 1, "wieght": 2}]))
        with pytest.raises(ConfigurationError):
            build_network(basic_scenario(
                flows=[{"id": 1, "source": {"kind": "poisson", "rate": 5}}]
            ))

    def test_no_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            build_network(basic_scenario(flows=[]))


class TestTopologyKey:
    def test_canned_parking_lot(self):
        net = build_network(basic_scenario(
            topology={"kind": "parking_lot", "hops": 3},
            flows=[
                {"id": 1, "weight": 2, "ingress": "C1", "egress": "C4"},
                {"id": 2, "ingress": "C1", "egress": "C2"},
            ],
        ))
        assert net.core_names == ["C1", "C2", "C3", "C4"]

    def test_custom_links(self):
        net = build_network(basic_scenario(
            topology={"kind": "custom",
                      "links": [["A", "B", 500, 0.02], ["B", "C", 250, 0.02]]},
            flows=[{"id": 1, "ingress": "A", "egress": "C"}],
        ))
        assert net.core_names == ["A", "B", "C"]
        assert net.topology.links["B->C"].bandwidth_pps == 250.0

    def test_topology_and_shape_keys_are_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            build_network(basic_scenario(
                topology={"kind": "mesh"},
                network={"num_cores": 3},
            ))

    def test_control_loss_prob_still_allowed_with_topology(self):
        net = build_network(basic_scenario(
            topology={"kind": "chain", "num_cores": 2},
            network={"control_loss_prob": 0.1},
        ))
        assert net.control.loss_prob == 0.1

    def test_bad_topology_value_names_the_field(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError, match=r"capacity_pps.*-5"):
            build_network(basic_scenario(
                topology={"kind": "custom", "links": [["A", "B", -5, 0.02]]},
                flows=[{"id": 1, "ingress": "A", "egress": "B"}],
            ))

    def test_example_scenario_files_build(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "examples", "scenarios")
        for fname in ("chain4.json", "parking_lot.json", "mesh.json"):
            scenario = load_scenario_file(os.path.join(root, fname))
            net = build_network(scenario)
            assert net.flows, fname


class TestRun:
    def test_end_to_end(self):
        result = run_scenario(basic_scenario(duration=20.0))
        assert result.scheme == "corelite"
        rates = result.mean_rates((15.0, 20.0))
        assert rates[2] > rates[1]

    def test_record_queues_flag(self):
        result = run_scenario(basic_scenario(duration=5.0, record_queues=True))
        assert "C1->C2" in result.queue_series

    def test_from_file_and_cli(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(basic_scenario(duration=8.0)))
        assert load_scenario_file(str(path))["duration"] == 8.0

        from repro.cli import main

        assert main(["run", str(path), "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "corelite" in out

    def test_non_object_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_scenario_file(str(path))
