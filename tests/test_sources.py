"""Unit tests for the traffic source models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.sources import (
    BACKLOGGED,
    BackloggedSource,
    OnOffSource,
    PoissonSource,
    SourceSpec,
    onoff_source,
    poisson_source,
)


def drive(model, duration, seed=0):
    sim = Simulator()
    deposits = []
    model.start(sim, lambda n: deposits.append((sim.now, n)), random.Random(seed))
    sim.run(until=duration)
    return deposits


class TestPoisson:
    def test_mean_rate(self):
        model = PoissonSource(mean_rate=100.0)
        deposits = drive(model, duration=50.0)
        total = sum(n for _, n in deposits)
        assert total == pytest.approx(5000, rel=0.1)

    def test_gaps_are_variable(self):
        model = PoissonSource(mean_rate=50.0)
        deposits = drive(model, duration=20.0)
        gaps = [b - a for (a, _), (b, _) in zip(deposits, deposits[1:])]
        assert max(gaps) > 3 * (sum(gaps) / len(gaps))

    def test_stop_halts(self):
        sim = Simulator()
        model = PoissonSource(mean_rate=100.0)
        count = []
        model.start(sim, lambda n: count.append(n), random.Random(0))
        sim.run(until=1.0)
        model.stop()
        n_before = len(count)
        sim.run(until=10.0)
        assert len(count) == n_before

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonSource(0.0)


class TestOnOff:
    def test_mean_rate_formula(self):
        model = OnOffSource(peak_rate=300.0, mean_on=1.0, mean_off=2.0)
        assert model.mean_rate == pytest.approx(100.0)

    def test_long_run_offered_load(self):
        model = OnOffSource(peak_rate=300.0, mean_on=0.5, mean_off=1.0)
        deposits = drive(model, duration=300.0)
        total = sum(n for _, n in deposits)
        assert total == pytest.approx(300.0 * 300.0 / 3.0, rel=0.2)

    def test_bursts_at_peak_rate(self):
        model = OnOffSource(peak_rate=100.0, mean_on=5.0, mean_off=5.0)
        deposits = drive(model, duration=30.0)
        gaps = [b - a for (a, _), (b, _) in zip(deposits, deposits[1:])]
        # within a burst, gaps are exactly 1/peak
        in_burst = [g for g in gaps if g < 0.05]
        assert in_burst and all(g == pytest.approx(0.01) for g in in_burst)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            OnOffSource(0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            OnOffSource(10.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            OnOffSource(10.0, 1.0, -1.0)


class TestBacklogged:
    def test_never_deposits(self):
        model = BackloggedSource()
        assert drive(model, duration=10.0) == []


class TestSourceSpec:
    def test_backlogged_sentinel(self):
        assert BACKLOGGED.is_backlogged
        assert BACKLOGGED.offered_rate() == float("inf")

    def test_poisson_spec(self):
        spec = poisson_source(60.0)
        assert spec.offered_rate() == 60.0
        assert isinstance(spec.build(), PoissonSource)

    def test_onoff_spec(self):
        spec = onoff_source(300.0, 0.5, 1.0)
        assert spec.offered_rate() == pytest.approx(100.0)
        assert isinstance(spec.build(), OnOffSource)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceSpec("fractal")

    def test_invalid_factory_args(self):
        with pytest.raises(ConfigurationError):
            poisson_source(-1.0)
        with pytest.raises(ConfigurationError):
            onoff_source(10.0, 0.0, 1.0)


def test_start_is_idempotent_while_running():
    sim = Simulator()
    model = PoissonSource(100.0)
    count = []
    model.start(sim, lambda n: count.append(n), random.Random(0))
    model.start(sim, lambda n: count.append(n), random.Random(1))
    sim.run(until=5.0)
    # one generator's worth of arrivals, not two
    assert sum(count) == pytest.approx(500, rel=0.3)
