"""Unit tests for the slow-start + weighted-LIMD rate controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import Phase, RateController
from repro.core.config import CoreliteConfig
from repro.errors import ConfigurationError


def make(weight=1.0, **cfg_kwargs):
    cfg = CoreliteConfig(**cfg_kwargs)
    return RateController(cfg, weight=weight, start_time=0.0)


def test_starts_in_slow_start_at_initial_rate():
    c = make()
    assert c.phase is Phase.SLOW_START
    assert c.rate == 1.0


def test_doubles_every_interval_without_feedback():
    c = make()
    rates = []
    for t in range(1, 5):
        c.on_epoch(0, float(t))
        rates.append(c.rate)
    assert rates == [2.0, 4.0, 8.0, 16.0]


def test_no_double_before_interval_elapses():
    c = make()
    c.on_epoch(0, 0.3)
    c.on_epoch(0, 0.6)
    assert c.rate == 1.0


def test_slow_start_exits_on_first_feedback_with_halving():
    c = make()
    c.on_epoch(0, 1.0)  # 2.0
    c.on_epoch(0, 2.0)  # 4.0
    c.on_epoch(3, 2.5)
    assert c.phase is Phase.LINEAR
    assert c.rate == pytest.approx(2.0)
    assert c.slow_start_exits == 1


def test_slow_start_exit_at_normalized_threshold():
    """Doubling stops when rate/weight exceeds ss_thresh; rate halves back.

    This is the §4.2 behavior: every flow completes slow-start at a
    normalized rate of ss_thresh/2, i.e. near the weighted fair share.
    """
    c = make(weight=1.0)
    for t in range(1, 10):
        c.on_epoch(0, float(t))
        if c.phase is Phase.LINEAR:
            break
    assert c.rate == pytest.approx(32.0)
    assert c.phase is Phase.LINEAR


def test_slow_start_threshold_scales_with_weight():
    c = make(weight=4.0)
    for t in range(1, 12):
        c.on_epoch(0, float(t))
        if c.phase is Phase.LINEAR:
            break
    # exits when rate/4 > 32, i.e. at 256 -> halve to 128 = 4 * 32
    assert c.rate == pytest.approx(128.0)


def test_linear_increase_without_feedback():
    c = make()
    c.on_epoch(5, 1.0)  # exit slow start at 0.5
    base = c.rate
    c.on_epoch(0, 2.0)
    c.on_epoch(0, 3.0)
    assert c.rate == pytest.approx(base + 2.0)
    assert c.increases == 2


def test_decrease_proportional_to_feedback_count():
    c = make()
    c.on_epoch(1, 1.0)  # -> linear
    c.rate = 50.0
    c.on_epoch(4, 2.0)
    assert c.rate == pytest.approx(46.0)


def test_rate_never_negative():
    c = make()
    c.on_epoch(1, 1.0)
    c.rate = 2.0
    c.on_epoch(1000, 2.0)
    assert c.rate == 0.0


def test_min_rate_contract_floor():
    cfg = CoreliteConfig()
    c = RateController(cfg, weight=1.0, min_rate=10.0)
    assert c.rate == 10.0  # starts at the contracted floor
    c.on_epoch(1, 1.0)  # exit slow start
    c.on_epoch(1000, 2.0)
    assert c.rate == 10.0  # never throttled below the contract


def test_max_rate_cap():
    c = make(max_rate=20.0)
    for t in range(1, 10):
        c.on_epoch(0, float(t))
    assert c.rate <= 20.0


def test_restart_returns_to_slow_start():
    c = make()
    c.on_epoch(1, 1.0)
    c.rate = 77.0
    c.restart(now=50.0)
    assert c.phase is Phase.SLOW_START
    assert c.rate == 1.0
    c.on_epoch(0, 50.5)
    assert c.rate == 1.0  # doubling interval restarts from the restart time
    c.on_epoch(0, 51.0)
    assert c.rate == 2.0


def test_negative_feedback_rejected():
    c = make()
    with pytest.raises(ConfigurationError):
        c.on_epoch(-1, 1.0)


def test_invalid_weight_rejected():
    with pytest.raises(ConfigurationError):
        make(weight=0.0)


def test_feedback_counter_accumulates():
    c = make()
    c.on_epoch(2, 1.0)
    c.on_epoch(3, 2.0)
    assert c.feedback_total == 5


@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=200),
    st.floats(0.5, 8.0),
)
@settings(max_examples=50, deadline=None)
def test_rate_stays_in_bounds_under_any_feedback(feedback_seq, weight):
    cfg = CoreliteConfig(max_rate=500.0)
    c = RateController(cfg, weight=weight)
    t = 0.0
    for m in feedback_seq:
        t += cfg.edge_epoch
        c.on_epoch(m, t)
        assert cfg.min_rate <= c.rate <= cfg.max_rate


@given(st.floats(1.0, 8.0))
@settings(max_examples=25, deadline=None)
def test_decrease_is_effectively_multiplicative(weight):
    """With feedback proportional to bg/w (the core's guarantee), the
    per-epoch decrease is a fixed *fraction* of the rate — Chiu-Jain
    multiplicative decrease."""
    cfg = CoreliteConfig()
    c = RateController(cfg, weight=weight)
    c.on_epoch(1, 1.0)  # exit slow start
    k = 0.05  # feedback markers per unit normalized rate
    c.rate = 100.0
    before = c.rate
    m = int(round(k * c.rate / weight * 10))
    c.on_epoch(m, 2.0)
    drop_fraction = (before - c.rate) / before
    expected_fraction = cfg.beta * m / before
    assert drop_fraction == pytest.approx(expected_fraction)
