"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_initial_time_is_zero(sim):
    assert sim.now == 0.0


def test_schedule_runs_in_time_order(sim):
    order = []
    sim.schedule(2.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(3.0, order.append, "latest")
    sim.run()
    assert order == ["early", "late", "latest"]


def test_same_time_events_run_in_insertion_order(sim):
    order = []
    for i in range(5):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time(sim):
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0


def test_run_until_includes_events_at_boundary(sim):
    fired = []
    sim.schedule(2.0, fired.append, "boundary")
    sim.run(until=2.0)
    assert fired == ["boundary"]


def test_run_until_then_resume(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(3.0, fired.append, 3)
    sim.run(until=2.0)
    sim.run(until=4.0)
    assert fired == [1, 3]


def test_schedule_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_raises(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_execution(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_after_fire_is_noop(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.run()
    handle.cancel()  # must not raise
    assert fired == ["x"]


def test_events_can_schedule_events(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_event_args_are_passed(sim):
    seen = []
    sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]


def test_step_runs_single_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == [1, 2]


def test_step_skips_cancelled(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    handle.cancel()
    assert sim.step() is True
    assert fired == [2]


def test_events_executed_counter(sim):
    for i in range(7):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_executed == 7


def test_peek_time(sim):
    assert sim.peek_time() is None
    h = sim.schedule(3.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    assert sim.peek_time() == 3.0
    h.cancel()
    assert sim.peek_time() == 5.0


def test_run_is_not_reentrant(sim):
    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_zero_delay_event_runs_now(sim):
    sim.schedule(1.0, lambda: sim.schedule(0.0, marks.append, sim.now))
    marks = []
    sim.run()
    assert marks == [1.0]


class TestCancelAfterFire:
    def test_double_cancel_after_fire_is_noop(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.run()
        handle.cancel()
        handle.cancel()  # idempotent, must not raise
        assert handle.cancelled
        assert fired == ["x"]

    def test_cancel_fired_event_does_not_disturb_pending(self, sim):
        fired = []
        first = sim.schedule(1.0, fired.append, "first")
        sim.schedule(2.0, fired.append, "second")
        sim.run(until=1.5)
        first.cancel()  # already fired; the pending event must survive
        sim.run(until=3.0)
        assert fired == ["first", "second"]

    def test_cancel_from_inside_own_callback(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: (fired.append("x"), handle.cancel()))
        sim.run()
        assert fired == ["x"]
        assert sim.events_executed == 1


class TestRunUntilBoundary:
    def test_schedule_at_exactly_until_fires(self, sim):
        fired = []
        sim.schedule_at(2.0, fired.append, "at-boundary")
        sim.schedule_at(2.0 + 1e-12, fired.append, "just-after")
        sim.run(until=2.0)
        assert fired == ["at-boundary"]
        assert sim.now == 2.0

    def test_boundary_event_not_replayed_on_resume(self, sim):
        fired = []
        sim.schedule_at(2.0, fired.append, "boundary")
        sim.run(until=2.0)
        sim.run(until=5.0)
        assert fired == ["boundary"]

    def test_event_scheduling_zero_delay_at_boundary_runs(self, sim):
        fired = []

        def at_boundary():
            fired.append("first")
            sim.schedule(0.0, fired.append, "chained")

        sim.schedule_at(2.0, at_boundary)
        sim.run(until=2.0)
        # the chained event lands at exactly t == until, so it runs too
        assert fired == ["first", "chained"]

    def test_periodic_tick_exactly_at_until(self, sim):
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.0)
        assert ticks == [1.0, 2.0, 3.0]


class TestPeriodicTask:
    def test_fires_every_interval(self, sim):
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_first_delay_offsets_phase(self, sim):
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), first_delay=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_cancels_future_firings(self, sim):
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        task.stop()
        assert task.stopped
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_within_callback(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = sim.every(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_within_first_callback(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            task.stop()

        task = sim.every(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0]
        assert task.stopped
        assert sim.peek_time() is None  # no orphaned reschedule left behind

    def test_stop_twice_is_idempotent(self, sim):
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=1.5)
        task.stop()
        task.stop()  # must not raise
        sim.run(until=5.0)
        assert ticks == [1.0]

    def test_non_positive_interval_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_negative_first_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.every(1.0, lambda: None, first_delay=-1.0)


class TestWindowInjectEdgeCases:
    """run_window/inject corner cases the PDES coordinator leans on."""

    @pytest.fixture
    def sim(self):
        return Simulator()

    def test_inject_exactly_at_the_barrier_boundary(self, sim):
        # A cross-partition message can be timed exactly at the clock the
        # previous window landed on (deliver == t_next): it must inject
        # cleanly and run in the next window.
        fired = []
        sim.run_window(1.0)
        sim.inject(1.0, fired.append, "boundary")
        sim.inject(1.5, fired.append, "later")
        sim.run_window(1.0)  # zero-width window runs the boundary event
        assert fired == ["boundary"]
        assert sim.now == 1.0
        sim.run_window(2.0)
        assert fired == ["boundary", "later"]

    def test_inject_beyond_the_calendar_horizon(self, sim):
        # Populate past the calendar activation floor so near events live
        # in the calendar tier, then inject far beyond its horizon (the
        # heap tier) and in between: dispatch order must be global.
        fired = []
        for index in range(400):
            sim.schedule_at(0.001 * index, fired.append, ("cal", index))
        sim.inject(10.0, fired.append, ("far", 0))
        sim.inject(0.0005, fired.append, ("near", 0))
        sim.run(until=20.0)
        assert fired[0] == ("cal", 0)
        assert fired[1] == ("near", 0)
        assert fired[-1] == ("far", 0)
        assert len(fired) == 402
        assert sim.now == 20.0

    def test_past_inject_raises_cleanly_and_leaves_state_usable(self, sim):
        fired = []
        sim.run_window(2.0)
        with pytest.raises(SimulationError, match="past"):
            sim.inject(1.0, fired.append, "no")
        # The failed inject must not have half-registered anything.
        assert sim.peek_time() is None
        sim.inject(2.5, fired.append, "yes")
        sim.run_window(3.0)
        assert fired == ["yes"]

    def test_run_window_after_a_completed_run(self, sim):
        fired = []
        sim.schedule_at(0.5, fired.append, "a")
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.inject(4.5, fired.append, "b")
        sim.run_window(5.0)
        assert fired == ["a", "b"]
        assert sim.now == 5.0
        with pytest.raises(SimulationError, match="past"):
            sim.run_window(4.5)

    def test_empty_window_fast_path_advances_the_clock(self, sim):
        # No live event at or before the barrier: the window is O(1) and
        # only moves the clock; the far event stays queued.
        sim.schedule_at(9.0, lambda: None)
        sim.run_window(3.0)
        assert sim.now == 3.0
        assert sim.peek_time() == 9.0
