"""Additional CLI coverage: new subcommands and export paths."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.cli import build_parser, main


def test_list_includes_new_ablations(capsys):
    main(["list"])
    out = capsys.readouterr().out
    for name in ("alpha", "beta", "traffic", "aqm"):
        assert name in out


def test_ablation_alpha_runs(capsys):
    assert main(["ablation", "alpha", "--duration", "45"]) == 0
    out = capsys.readouterr().out
    assert "weighted jain" in out


def test_report_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["report"])
    assert args.scale == 0.25
    assert args.handler is not None


def test_run_command_requires_existing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["run", str(tmp_path / "missing.json")])


def test_run_command_with_json_output(tmp_path, capsys):
    scenario = {
        "scheme": "corelite",
        "duration": 8.0,
        "flows": [{"id": 1}, {"id": 2, "weight": 2.0}],
    }
    scenario_path = tmp_path / "s.json"
    scenario_path.write_text(json.dumps(scenario))
    out_path = tmp_path / "out.json"
    assert main(["run", str(scenario_path), "--no-chart",
                 "--json", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["scenario"] == str(scenario_path)
    assert "corelite" in payload


def test_figure_csv_and_svg_combined(tmp_path, capsys):
    out = tmp_path / "exports"
    assert main([
        "fig5_6", "--duration", "10", "--no-chart",
        "--csv-dir", str(out), "--svg-dir", str(out),
    ]) == 0
    names = {p.name for p in out.iterdir()}
    assert "fig5_6_corelite.svg" in names
    assert "fig5_6_corelite_rates.csv" in names
    ET.fromstring((out / "fig5_6_csfq.svg").read_text())
