"""Unit and property tests for incipient congestion detection and Fn."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CoreliteConfig
from repro.core.congestion import (
    CongestionEstimator,
    LinearCongestionEstimator,
    Mm1CongestionEstimator,
    make_estimator,
)
from repro.errors import ConfigurationError


def make(fn_k=0.02, qthresh=8.0, core_epoch=0.1, service=500.0):
    cfg = CoreliteConfig(fn_k=fn_k, qthresh=qthresh, core_epoch=core_epoch)
    return CongestionEstimator(cfg, service_rate_pps=service)


def test_no_congestion_below_threshold():
    est = make()
    assert est.fn(0.0) == 0.0
    assert est.fn(7.9) == 0.0
    assert est.fn(8.0) == 0.0


def test_fn_formula_value():
    est = make(fn_k=0.0)
    qavg = 12.0
    mu = 500.0 * 0.1
    expected = mu * (qavg / 13.0 - 8.0 / 9.0)
    assert est.fn(qavg) == pytest.approx(expected)


def test_cubic_correction_term():
    base = make(fn_k=0.0).fn(20.0)
    corrected = make(fn_k=0.02).fn(20.0)
    assert corrected == pytest.approx(base + 0.02 * 12.0**3)


def test_mm1_term_saturates_but_cubic_does_not():
    """§3.1: the M/M/1 term saturates at mu; only k > 0 keeps marker
    production growing with the backlog."""
    flat = make(fn_k=0.0)
    assert flat.fn(1000.0) - flat.fn(100.0) < 1.0  # nearly saturated
    growing = make(fn_k=0.02)
    assert growing.fn(1000.0) > growing.fn(100.0) * 10
    assert growing.fn(200.0) > growing.fn(100.0) * 5


def test_negative_qavg_rejected():
    with pytest.raises(ConfigurationError):
        make().fn(-1.0)


def test_invalid_service_rate():
    with pytest.raises(ConfigurationError):
        CongestionEstimator(CoreliteConfig(), service_rate_pps=0.0)


class TestMarkersForEpoch:
    def test_zero_when_uncongested(self):
        est = make()
        assert est.markers_for_epoch(5.0) == 0
        assert est.congested_epochs == 0

    def test_fractional_carry_accumulates(self):
        est = make(fn_k=0.0)
        value = est.fn(9.0)
        assert 0.0 < value < 1.0
        total = sum(est.markers_for_epoch(9.0) for _ in range(100))
        assert total == pytest.approx(100 * value, abs=1.0)

    def test_carry_resets_when_congestion_clears(self):
        est = make(fn_k=0.0)
        est.markers_for_epoch(9.0)  # leaves a fractional carry
        est.markers_for_epoch(0.0)  # congestion gone -> carry cleared
        first_again = est.markers_for_epoch(9.0)
        assert first_again == 0  # fn(9) < 1 and carry was reset

    def test_counts_congested_epochs(self):
        est = make()
        est.markers_for_epoch(20.0)
        est.markers_for_epoch(20.0)
        est.markers_for_epoch(1.0)
        assert est.congested_epochs == 2


class TestPluggableEstimators:
    def test_default_alias_is_mm1(self):
        assert CongestionEstimator is Mm1CongestionEstimator

    def test_factory_builds_by_name(self):
        cfg = CoreliteConfig(congestion_estimator="linear")
        est = make_estimator(cfg, 500.0)
        assert isinstance(est, LinearCongestionEstimator)
        est2 = make_estimator(CoreliteConfig(), 500.0)
        assert isinstance(est2, Mm1CongestionEstimator)

    def test_unknown_name_rejected_by_config(self):
        with pytest.raises(ConfigurationError):
            CoreliteConfig(congestion_estimator="psychic")
        with pytest.raises(ConfigurationError):
            CoreliteConfig(linear_gain=0.0)

    def test_linear_formula(self):
        cfg = CoreliteConfig(congestion_estimator="linear", linear_gain=2.0)
        est = LinearCongestionEstimator(cfg, 500.0)
        assert est.fn(8.0) == 0.0
        assert est.fn(13.0) == pytest.approx(10.0)

    def test_linear_shares_carry_machinery(self):
        cfg = CoreliteConfig(congestion_estimator="linear", linear_gain=0.3)
        est = LinearCongestionEstimator(cfg, 500.0)
        total = sum(est.markers_for_epoch(9.0) for _ in range(100))
        assert total == pytest.approx(100 * 0.3, abs=1.0)


@given(st.floats(0.0, 500.0), st.floats(0.0, 500.0))
@settings(max_examples=80, deadline=None)
def test_fn_is_monotone_in_qavg(q1, q2):
    est = make()
    lo, hi = sorted((q1, q2))
    assert est.fn(lo) <= est.fn(hi) + 1e-9


@given(st.floats(0.0, 500.0))
@settings(max_examples=80, deadline=None)
def test_fn_is_non_negative(qavg):
    assert make().fn(qavg) >= 0.0


@given(st.floats(8.01, 400.0), st.floats(0.0, 0.2))
@settings(max_examples=60, deadline=None)
def test_fn_increases_with_k(qavg, k):
    assert make(fn_k=k).fn(qavg) >= make(fn_k=0.0).fn(qavg) - 1e-9
