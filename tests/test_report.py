"""Unit tests for text reporting."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import (
    ascii_chart,
    format_table,
    rate_comparison_table,
    series_summary,
)
from repro.sim.monitor import Series


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in out and "22.25" in out
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestAsciiChart:
    def make_series(self):
        s = Series("r")
        for t in range(20):
            s.append(float(t), float(t * 5))
        return s

    def test_renders_title_and_legend(self):
        out = ascii_chart({"flow1": self.make_series()}, title="Rates")
        assert out.startswith("Rates")
        assert "1=flow1" in out

    def test_multiple_series_get_distinct_markers(self):
        out = ascii_chart({"a": self.make_series(), "b": self.make_series()})
        assert "1=a" in out and "2=b" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": self.make_series()}, width=5)

    def test_y_max_override(self):
        out = ascii_chart({"a": self.make_series()}, y_max=1000.0)
        assert "1000.0" in out


def test_rate_comparison_table():
    out = rate_comparison_table(
        measured={1: 24.0, 2: 76.0},
        expected={1: 25.0, 2: 75.0},
        weights={1: 1.0, 2: 3.0},
        losses={1: 0, 2: 3},
    )
    assert "flow" in out
    assert "24.00" in out
    assert "losses" in out


def test_series_summary_buckets():
    s = Series("x")
    for t in range(100):
        s.append(float(t), float(t))
    rows = series_summary(s, buckets=4)
    assert len(rows) == 4
    assert rows[0][1] < rows[-1][1]


def test_series_summary_empty():
    assert series_summary(Series("x")) == []
