"""Failure-injection and robustness tests.

The Corelite control loop rides on unacknowledged control packets:
feedback markers can be lost.  These tests inject control-plane loss and
verify graceful degradation — the design's implicit claim, since a core
router "does not know or care" whether its feedback arrives.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork, CsfqNetwork, FlowSpec
from repro.experiments.scenarios import startup_flows
from repro.fairness.metrics import weighted_jain_index
from repro.sim.control import ControlPlane


class TestControlPlaneLoss:
    def run_with_loss(self, loss_prob, until=80.0):
        net = CoreliteNetwork.single_bottleneck(seed=0, control_loss_prob=loss_prob)
        net.add_flows(startup_flows(6))
        result = net.run(until=until)
        return net, result

    def test_lossless_control_plane_loses_nothing(self):
        net, _result = self.run_with_loss(0.0)
        assert net.control.lost == 0

    def test_fault_model_counts_losses(self):
        net, _result = self.run_with_loss(0.3)
        assert net.control.lost > 0
        assert net.control.delivered > 0

    def test_fairness_survives_30_percent_feedback_loss(self):
        """Lost feedback slows throttling but does not break weighted
        fairness: the next epoch's markers carry the same information."""
        _net, result = self.run_with_loss(0.3)
        rates = result.mean_rates((60.0, 80.0))
        weights = result.weights()
        flow_ids = sorted(rates)
        wj = weighted_jain_index(
            [rates[f] for f in flow_ids], [weights[f] for f in flow_ids]
        )
        assert wj > 0.95

    def test_feedback_loss_costs_packet_drops(self):
        """Degradation is graceful but real: less feedback means deeper
        queue excursions and somewhat more tail drops."""
        _net0, clean = self.run_with_loss(0.0)
        _net1, lossy = self.run_with_loss(0.5)
        assert lossy.total_drops >= clean.total_drops

    def test_csfq_loss_notifications_also_survive(self):
        net = CsfqNetwork.single_bottleneck(seed=0, control_loss_prob=0.3)
        net.add_flows(startup_flows(6))
        result = net.run(until=80.0)
        rates = result.mean_rates((60.0, 80.0))
        weights = result.weights()
        flow_ids = sorted(rates)
        wj = weighted_jain_index(
            [rates[f] for f in flow_ids], [weights[f] for f in flow_ids]
        )
        assert wj > 0.9

    def test_invalid_loss_prob_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreliteNetwork.single_bottleneck(control_loss_prob=1.0)
        with pytest.raises(ConfigurationError):
            CoreliteNetwork.single_bottleneck(control_loss_prob=-0.1)

    def test_lossy_plane_requires_rng(self):
        from repro.sim.engine import Simulator
        from repro.sim.topology import Topology

        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ControlPlane(sim, Topology(sim), loss_prob=0.2, rng=None)


class TestQueueRecording:
    def test_queue_series_recorded_for_core_links(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flows(startup_flows(4))
        result = net.run(until=20.0, record_queues=True)
        assert "C1->C2" in result.queue_series
        series = result.queue_series["C1->C2"]
        assert len(series) > 0
        assert max(series.values) <= 40.0

    def test_queue_series_absent_by_default(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1))
        result = net.run(until=5.0)
        assert result.queue_series == {}

    def test_congested_link_queue_oscillates_below_capacity(self):
        """The §3.1 design goal: incipient-congestion feedback keeps the
        queue off the 40-packet ceiling in steady state."""
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flows(startup_flows(6))
        result = net.run(until=60.0, record_queues=True)
        steady = result.queue_series["C1->C2"].window(30.0, 60.0)
        mean_occupancy = sum(steady.values) / len(steady)
        assert 0.0 < mean_occupancy < 35.0
