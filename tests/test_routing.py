"""Unit tests for Dijkstra shortest paths."""

import pytest

from repro.errors import RoutingError
from repro.sim.routing import path_cost, reconstruct_path, shortest_paths


def simple_adjacency():
    # A -1- B -1- C, plus a slow direct edge A -5- C
    return {
        "A": [("B", 1.0, "A->B"), ("C", 5.0, "A->C")],
        "B": [("C", 1.0, "B->C"), ("A", 1.0, "B->A")],
        "C": [("B", 1.0, "C->B"), ("A", 5.0, "C->A")],
    }


def test_prefers_cheaper_multi_hop_path():
    dist, prev = shortest_paths(simple_adjacency(), "A")
    assert reconstruct_path(prev, "A", "C") == ["A->B", "B->C"]
    assert dist["C"] == pytest.approx(2.0, abs=1e-6)


def test_direct_path_when_cheaper():
    adj = simple_adjacency()
    adj["A"] = [("B", 1.0, "A->B"), ("C", 1.5, "A->C")]
    _, prev = shortest_paths(adj, "A")
    assert reconstruct_path(prev, "A", "C") == ["A->C"]


def test_path_to_self_is_empty():
    _, prev = shortest_paths(simple_adjacency(), "A")
    assert reconstruct_path(prev, "A", "A") == []


def test_unreachable_raises():
    adj = {"A": [("B", 1.0, "A->B")], "B": [], "X": []}
    _, prev = shortest_paths(adj, "A")
    with pytest.raises(RoutingError):
        reconstruct_path(prev, "A", "X")


def test_unknown_source_raises():
    with pytest.raises(RoutingError):
        shortest_paths({"A": []}, "Z")


def test_negative_cost_rejected():
    adj = {"A": [("B", -1.0, "A->B")], "B": []}
    with pytest.raises(RoutingError):
        shortest_paths(adj, "A")


def test_equal_cost_prefers_fewer_hops():
    # A->C direct costs exactly the same as A->B->C.
    adj = {
        "A": [("B", 1.0, "A->B"), ("C", 2.0, "A->C")],
        "B": [("C", 1.0, "B->C")],
        "C": [],
    }
    _, prev = shortest_paths(adj, "A")
    assert reconstruct_path(prev, "A", "C") == ["A->C"]


def test_deterministic_tie_breaking_by_insertion():
    # Two equal 2-hop paths A->B->D and A->C->D: the first relaxation wins
    # and later equal-cost candidates never replace it.
    adj = {
        "A": [("B", 1.0, "A->B"), ("C", 1.0, "A->C")],
        "B": [("D", 1.0, "B->D")],
        "C": [("D", 1.0, "C->D")],
        "D": [],
    }
    _, prev = shortest_paths(adj, "A")
    assert reconstruct_path(prev, "A", "D") == ["A->B", "B->D"]


def test_path_cost_helper():
    dist, _ = shortest_paths(simple_adjacency(), "A")
    assert path_cost(dist, "B", "A") == pytest.approx(1.0, abs=1e-6)
    with pytest.raises(RoutingError):
        path_cost(dist, "missing", "A")


def test_chain_topology_costs():
    chain = {
        "C1": [("C2", 0.04, "C1->C2")],
        "C2": [("C3", 0.04, "C2->C3"), ("C1", 0.04, "C2->C1")],
        "C3": [("C2", 0.04, "C3->C2")],
    }
    dist, prev = shortest_paths(chain, "C1")
    assert dist["C3"] == pytest.approx(0.08, abs=1e-6)
    assert reconstruct_path(prev, "C1", "C3") == ["C1->C2", "C2->C3"]
