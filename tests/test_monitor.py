"""Unit tests for series, samplers and throughput meters."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.monitor import CumulativeCounter, RateSampler, Series, ThroughputMeter


class TestSeries:
    def test_append_and_iterate(self):
        s = Series("x")
        s.append(0.0, 1.0)
        s.append(1.0, 2.0)
        assert list(s) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(s) == 2

    def test_non_monotonic_time_rejected(self):
        s = Series("x")
        s.append(1.0, 0.0)
        with pytest.raises(SimulationError):
            s.append(0.5, 0.0)

    def test_last(self):
        s = Series("x")
        s.append(1.0, 5.0)
        s.append(2.0, 6.0)
        assert s.last() == (2.0, 6.0)

    def test_last_empty_raises(self):
        with pytest.raises(SimulationError):
            Series("x").last()

    def test_window_selects_inclusive_range(self):
        s = Series("x")
        for t in range(5):
            s.append(float(t), float(t * 10))
        w = s.window(1.0, 3.0)
        assert list(w) == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]

    def test_window_empty(self):
        s = Series("x")
        s.append(0.0, 1.0)
        assert len(s.window(5.0, 6.0)) == 0

    def test_mean(self):
        s = Series("x")
        for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]:
            s.append(t, v)
        assert s.mean() == pytest.approx(20.0)
        assert s.mean(1.0, 2.0) == pytest.approx(25.0)

    def test_mean_empty_window_raises(self):
        s = Series("x")
        s.append(0.0, 1.0)
        with pytest.raises(SimulationError):
            s.mean(5.0, 6.0)

    def test_value_at(self):
        s = Series("x")
        s.append(0.0, 1.0)
        s.append(2.0, 3.0)
        assert s.value_at(0.0) == 1.0
        assert s.value_at(1.9) == 1.0
        assert s.value_at(2.5) == 3.0
        with pytest.raises(SimulationError):
            s.value_at(-0.1)


class TestRateSampler:
    def test_samples_periodically(self):
        sim = Simulator()
        values = iter(range(100))
        sampler = RateSampler(sim, 1.0, lambda: float(next(values)), name="v")
        sim.run(until=3.5)
        assert sampler.series.as_rows() == [(1.0, 0.0), (2.0, 1.0), (3.0, 2.0)]

    def test_stop(self):
        sim = Simulator()
        sampler = RateSampler(sim, 1.0, lambda: 1.0)
        sim.run(until=2.0)
        sampler.stop()
        sim.run(until=10.0)
        assert len(sampler.series) == 2


class TestThroughputMeter:
    def test_rate_over_interval(self):
        m = ThroughputMeter()
        for _ in range(10):
            m.record()
        assert m.take_rate(2.0) == pytest.approx(5.0)

    def test_rate_resets_between_calls(self):
        m = ThroughputMeter()
        m.record(4)
        assert m.take_rate(1.0) == pytest.approx(4.0)
        assert m.take_rate(2.0) == pytest.approx(0.0)
        m.record(3)
        assert m.take_rate(3.0) == pytest.approx(3.0)

    def test_zero_elapsed_returns_zero(self):
        m = ThroughputMeter()
        m.record()
        assert m.take_rate(0.0) == 0.0

    def test_count_accumulates(self):
        m = ThroughputMeter()
        m.record(2)
        m.record(3)
        assert m.count == 5


def test_cumulative_counter():
    c = CumulativeCounter()
    c.record()
    c.record(4)
    assert c.value() == 5.0
