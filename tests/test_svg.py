"""Tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigurationError
from repro.experiments.svg import render_series_svg, save_series_svg, _nice_ticks
from repro.sim.monitor import Series


def make_series(name="s", n=50, scale=1.0):
    s = Series(name)
    for t in range(n):
        s.append(float(t), scale * t)
    return s


class TestRender:
    def test_produces_wellformed_svg(self):
        svg = render_series_svg({"a": make_series()}, title="T")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        svg = render_series_svg({"a": make_series(), "b": make_series(scale=2.0)})
        assert svg.count("<polyline") == 2

    def test_legend_and_title_present(self):
        svg = render_series_svg({"flow 1 (w=2)": make_series()}, title="Fig 5")
        assert "Fig 5" in svg
        assert "flow 1 (w=2)" in svg

    def test_escapes_markup_in_names(self):
        svg = render_series_svg({"a<b&c": make_series()}, title='q"t')
        assert "a&lt;b&amp;c" in svg
        ET.fromstring(svg)  # still well-formed

    def test_values_clamped_to_y_max(self):
        svg = render_series_svg({"a": make_series(n=10, scale=100.0)}, y_max=50.0)
        ET.fromstring(svg)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series_svg({})
        with pytest.raises(ConfigurationError):
            render_series_svg({"a": Series("a")})

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series_svg({"a": make_series()}, width=100, height=100)

    def test_save(self, tmp_path):
        path = tmp_path / "fig.svg"
        save_series_svg(str(path), {"a": make_series()})
        assert path.read_text().startswith("<svg")


class TestTicks:
    def test_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 100.0)
        assert ticks[0] >= 0.0
        assert ticks[-1] <= 100.0 + 1e-9
        assert len(ticks) >= 4

    def test_round_steps(self):
        ticks = _nice_ticks(0.0, 87.0)
        steps = {round(b - a, 6) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform
        step = steps.pop()
        assert step in (10.0, 20.0, 25.0, 50.0, 12.5, 5.0, 2.5, 2.0, 1.0, 15.0) or step > 0

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert ticks  # still yields something


def test_cli_svg_export(tmp_path, capsys):
    from repro.cli import main

    out_dir = tmp_path / "svgs"
    assert main([
        "fig5_6", "--duration", "12", "--no-chart", "--svg-dir", str(out_dir),
    ]) == 0
    files = sorted(p.name for p in out_dir.iterdir())
    assert files == ["fig5_6_corelite.svg", "fig5_6_csfq.svg"]
    ET.fromstring((out_dir / "fig5_6_corelite.svg").read_text())
