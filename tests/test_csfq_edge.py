"""Unit tests for the CSFQ edge router."""

import pytest

from repro.csfq.config import CsfqConfig
from repro.csfq.edge import CsfqEdge, CsfqFlowAttachment
from repro.errors import FlowError
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue


class Catcher:
    def __init__(self):
        self.name = "CATCH"
        self.packets = []

    def receive(self, packet, link):
        self.packets.append(packet)


@pytest.fixture
def rig():
    sim = Simulator()
    cfg = CsfqConfig()
    edge = CsfqEdge("Ein1", sim, cfg)
    catcher = Catcher()
    link = Link(sim, "Ein1->C", "Ein1", catcher, 10_000.0, 0.0, DropTailQueue(1000))
    edge.set_route("Eout1", link)
    return sim, cfg, edge, catcher


def test_emitted_packets_carry_normalized_labels(rig):
    sim, cfg, edge, catcher = rig
    edge.attach_flow(CsfqFlowAttachment(1, weight=2.0, dst_edge="Eout1"))
    edge.start_flow(1)
    sim.run(until=5.0)
    data = [p for p in catcher.packets if p.kind == PacketKind.DATA]
    assert data
    # After several seconds the estimate tracks the paced rate; the label
    # is rate/weight.
    last = data[-1]
    assert last.label == pytest.approx(edge.allotted_rate(1) / 2.0, rel=1.0)


def test_no_markers_in_csfq(rig):
    sim, cfg, edge, catcher = rig
    edge.attach_flow(CsfqFlowAttachment(1, weight=1.0, dst_edge="Eout1"))
    edge.start_flow(1)
    sim.run(until=3.0)
    assert all(p.kind == PacketKind.DATA for p in catcher.packets)


def test_loss_notification_throttles(rig):
    sim, cfg, edge, catcher = rig
    edge.attach_flow(CsfqFlowAttachment(1, weight=1.0, dst_edge="Eout1"))
    edge.start_flow(1)
    sim.run(until=3.0)
    rate_before = edge.allotted_rate(1)
    notify = Packet(PacketKind.LOSS_NOTIFY, 1, src="Eout1", dst="Ein1", size=0.0, label=3.0)
    edge.receive_loss_notify(notify)
    sim.run(until=3.0 + cfg.edge_epoch + 0.01)
    assert edge.allotted_rate(1) < rate_before


def test_stray_notification_counted(rig):
    sim, cfg, edge, catcher = rig
    notify = Packet(PacketKind.LOSS_NOTIFY, 42, src="X", dst="Ein1", size=0.0, label=1.0)
    edge.receive_loss_notify(notify)
    assert edge.stray_notifications == 1


def test_wrong_kind_on_control_plane_rejected(rig):
    sim, cfg, edge, catcher = rig
    with pytest.raises(FlowError):
        edge.receive_loss_notify(Packet.data(1, "A", "Ein1", 0, 0.0))


class TestEgress:
    def test_gap_triggers_loss_report(self, rig):
        sim, cfg, edge, catcher = rig
        reports = []
        edge.loss_channel = reports.append
        edge.expect_flow(5)
        edge.receive(Packet.data(5, "EinX", "Ein1", seq=0, now=0.0), link=None)
        edge.receive(Packet.data(5, "EinX", "Ein1", seq=4, now=0.0), link=None)
        assert edge.losses(5) == 3
        assert len(reports) == 1
        assert reports[0].kind == PacketKind.LOSS_NOTIFY
        assert reports[0].dst == "EinX"
        assert reports[0].label == 3.0

    def test_in_order_stream_reports_nothing(self, rig):
        sim, cfg, edge, catcher = rig
        reports = []
        edge.loss_channel = reports.append
        edge.expect_flow(5)
        for seq in range(20):
            edge.receive(Packet.data(5, "EinX", "Ein1", seq=seq, now=0.0), link=None)
        assert reports == []
        assert edge.delivered(5) == 20

    def test_ecn_mark_reported_as_congestion(self, rig):
        sim, cfg, edge, catcher = rig
        reports = []
        edge.loss_channel = reports.append
        edge.expect_flow(5)
        p = Packet.data(5, "EinX", "Ein1", seq=0, now=0.0)
        p.ecn = True
        edge.receive(p, link=None)
        assert len(reports) == 1
        assert reports[0].label == 1.0

    def test_missing_loss_channel_is_tolerated(self, rig):
        sim, cfg, edge, catcher = rig
        edge.loss_channel = None
        edge.expect_flow(5)
        edge.receive(Packet.data(5, "EinX", "Ein1", seq=0, now=0.0), link=None)
        edge.receive(Packet.data(5, "EinX", "Ein1", seq=9, now=0.0), link=None)
        assert edge.losses(5) == 8  # counted even if unreported


def test_restart_resets_estimator_and_controller(rig):
    sim, cfg, edge, catcher = rig
    edge.attach_flow(CsfqFlowAttachment(1, weight=1.0, dst_edge="Eout1"))
    edge.start_flow(1)
    sim.run(until=6.0)
    edge.stop_flow(1)
    sim.run(until=7.0)
    edge.start_flow(1)
    assert edge.allotted_rate(1) == cfg.initial_rate
