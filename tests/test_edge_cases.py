"""Edge cases and lifecycle corners across modules."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CoreliteConfig
from repro.core.edge import CoreliteEdge, FlowAttachment
from repro.errors import FlowError
from repro.experiments.network import CoreliteNetwork, FlowSpec
from repro.hosts.tcp import TcpReceiver, TcpSender
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue


class TestEngineCorners:
    def test_schedule_at_exactly_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_at(sim.now, fired.append, sim.now))
        sim.run()
        assert fired == [1.0]

    def test_periodic_task_stop_twice_is_safe(self):
        sim = Simulator()
        task = sim.every(1.0, lambda: None)
        task.stop()
        task.stop()
        assert task.stopped

    def test_run_with_until_before_any_event(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.pending() == 1


class TestEdgeLifecycle:
    def make_edge(self):
        sim = Simulator()
        edge = CoreliteEdge("Ein1", sim, CoreliteConfig())

        class Catcher:
            name = "C"
            packets = []

            def receive(self, p, link):
                self.packets.append(p)

        catcher = Catcher()
        link = Link(sim, "Ein1->C", "Ein1", catcher, 10_000.0, 0.0, DropTailQueue(10_000))
        edge.set_route("Eout1", link)
        return sim, edge, catcher

    def test_double_start_is_idempotent(self):
        sim, edge, catcher = self.make_edge()
        edge.attach_flow(FlowAttachment(1, 1.0, "Eout1"))
        edge.start_flow(1)
        edge.start_flow(1)
        sim.run(until=2.0)
        seqs = [p.seq for p in catcher.packets if p.kind == PacketKind.DATA]
        assert seqs == sorted(set(seqs))  # no duplicated emissions

    def test_stop_without_start_is_noop(self):
        sim, edge, catcher = self.make_edge()
        edge.attach_flow(FlowAttachment(1, 1.0, "Eout1"))
        edge.stop_flow(1)
        sim.run(until=1.0)
        assert catcher.packets == []

    def test_feedback_between_stop_and_restart_is_stray(self):
        sim, edge, catcher = self.make_edge()
        edge.attach_flow(FlowAttachment(1, 1.0, "Eout1"))
        edge.start_flow(1)
        sim.run(until=1.0)
        edge.stop_flow(1)
        fb = Packet(PacketKind.FEEDBACK, 1, src="C1", dst="Ein1", size=0.0)
        fb.feedback_from = "L"
        edge.receive_feedback(fb)
        assert edge.stray_feedback == 1
        edge.start_flow(1)  # restart unaffected by the stray feedback
        assert edge.allotted_rate(1) == CoreliteConfig().initial_rate

    def test_deposit_to_backlogged_flow_rejected(self):
        sim, edge, catcher = self.make_edge()
        edge.attach_flow(FlowAttachment(1, 1.0, "Eout1"))  # backlogged
        with pytest.raises(FlowError):
            edge.deposit(1, 1)

    def test_external_packets_while_stopped_are_dropped(self):
        sim, edge, catcher = self.make_edge()
        edge.attach_flow(FlowAttachment(1, 1.0, "Eout1", backlogged=False,
                                        external=True))
        pkt = Packet.data(1, "H", "R", seq=0, now=0.0)
        edge.receive(pkt, link=None)
        assert edge.shaper_drops_inactive == 1


class TestTcpInvariants:
    @given(st.sets(st.integers(0, 200), max_size=60), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_sequence_invariants_under_any_loss(self, lost, seed):
        """Whatever the loss pattern: the cumulative ack point never moves
        backwards, never passes the send frontier, and the transfer keeps
        making progress (losses are eventually repaired)."""
        sim = Simulator()
        sender = TcpSender("S", sim, 1, "R")
        receiver = TcpReceiver("R", sim, 1, "S")
        fwd = Link(sim, "S->R", "S", receiver, 1000.0, 0.01, DropTailQueue(5000))
        rev = Link(sim, "R->S", "R", sender, 1000.0, 0.01, DropTailQueue(5000))
        sender.set_route("R", fwd)
        receiver.set_route("S", rev)
        fwd.add_arrival_tap(lambda p, t: p.seq in lost and p.pid % 2 == 0)
        violations = []
        last_una = [0]

        def check():
            if sender.snd_una < last_una[0] or sender.snd_una > sender.next_seq:
                violations.append((sim.now, sender.snd_una, sender.next_seq))
            last_una[0] = sender.snd_una

        sim.every(0.02, check)
        sender.start()
        # The horizon must dominate a worst-case RTO backoff chain
        # (1+2+4+8+16 s with MAX_RTO=16): a loss pattern that parks one
        # hole behind consecutive timeouts legitimately takes tens of
        # seconds to repair, which is not an invariant violation.
        sim.run(until=40.0)
        assert not violations
        # every injected loss got repaired: the receiver's contiguous
        # prefix has moved past the largest lost sequence number.
        if lost:
            assert receiver.rcv_next > max(lost)
        assert receiver.delivered > 0

    def test_receiver_cumulative_ack_is_monotone(self):
        sim = Simulator()
        receiver = TcpReceiver("R", sim, 1, "S")
        acks = []

        class FakeLink:
            name = "rev"

            def send(self, packet):
                acks.append(packet.seq)
                return True

        receiver.set_route("S", FakeLink())
        rng = random.Random(0)
        seqs = list(range(50))
        rng.shuffle(seqs)
        for seq in seqs:
            receiver.receive(Packet.data(1, "S", "R", seq=seq, now=0.0), link=None)
        assert acks == sorted(acks)
        assert acks[-1] == 50


class TestNetworkCorners:
    def test_single_flow_network_is_stable(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1, weight=5.0))
        res = net.run(until=30.0)
        assert res.total_drops == 0
        assert res.flows[1].delivered > 0

    def test_flow_scheduled_entirely_after_horizon_never_runs(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(flow_id=1))
        net.add_flow(FlowSpec(flow_id=2, schedule=((100.0, 200.0),)))
        res = net.run(until=20.0)
        assert res.flows[2].delivered == 0
        assert res.flows[2].rate_series.mean() == 0.0

    def test_zero_weight_rejected_everywhere(self):
        with pytest.raises(Exception):
            FlowSpec(flow_id=1, weight=0.0)