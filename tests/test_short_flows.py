"""Short (finite-transfer) flows through Corelite and CSFQ.

The paper's §4.3: "with CSFQ the difference in performance obtained
especially by flows with higher weights and that are short-lived is
significant because flows have a greater chance of exiting their
slow-start prematurely.  Corelite avoids this and provides improved
fairness even for short-lived flows."
"""

import pytest

from repro.experiments.network import CoreliteNetwork, CsfqNetwork, FlowSpec
from repro.sim.sources import FiniteTransferSource, transfer_source
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
import random


class TestFiniteTransferSource:
    def test_offers_exactly_total(self):
        sim = Simulator()
        model = FiniteTransferSource(total=50, peak_rate=100.0)
        got = []
        model.start(sim, lambda n: got.append(n), random.Random(0))
        sim.run(until=10.0)
        assert sum(got) == 50
        assert model.finished

    def test_paced_at_peak_rate(self):
        sim = Simulator()
        model = FiniteTransferSource(total=100, peak_rate=100.0)
        times = []
        model.start(sim, lambda n: times.append(sim.now), random.Random(0))
        sim.run(until=10.0)
        assert times[-1] == pytest.approx(0.99, abs=0.02)

    def test_stop_mid_transfer(self):
        sim = Simulator()
        model = FiniteTransferSource(total=1000, peak_rate=100.0)
        got = []
        model.start(sim, lambda n: got.append(n), random.Random(0))
        sim.run(until=1.0)
        model.stop()
        sim.run(until=60.0)
        assert 50 <= sum(got) <= 150
        assert not model.finished

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FiniteTransferSource(0, 10.0)
        with pytest.raises(ConfigurationError):
            FiniteTransferSource(10, 0.0)
        with pytest.raises(ConfigurationError):
            transfer_source(-1, 10.0)


class TestShortFlowCompletion:
    def completion_time(self, network_cls, seed=0):
        """Two long backlogged flows plus a short 600-packet transfer that
        starts mid-run; return the transfer's completion time."""
        net = network_cls.single_bottleneck(seed=seed)
        net.add_flow(FlowSpec(flow_id=1, weight=1.0))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0))
        net.add_flow(FlowSpec(
            flow_id=3, weight=3.0, schedule=((40.0, 10_000.0),),
            source=transfer_source(600, 400.0),
        ))
        res = net.run(until=120.0, sample_interval=0.5)
        cum = res.flows[3].cumulative_series
        for t, v in cum:
            if v >= 600:
                return t - 40.0, res
        return None, res

    def test_short_high_weight_transfer_completes_reasonably(self):
        t_corelite, res = self.completion_time(CoreliteNetwork)
        assert t_corelite is not None, "transfer never completed under Corelite"
        # weighted share for w=3 of 5 units ~ 300 pkt/s; 600 packets in
        # a few seconds plus the slow-start runway.
        assert t_corelite < 40.0
        assert res.flows[3].losses <= 5

    def test_corelite_no_worse_than_csfq_for_short_flows(self):
        t_corelite, res_c = self.completion_time(CoreliteNetwork)
        t_csfq, res_q = self.completion_time(CsfqNetwork)
        assert t_corelite is not None
        # CSFQ may or may not complete in the horizon; if it does, the
        # paper's ordering claim: Corelite is not slower by much, and its
        # transfer loses (far) fewer packets.
        if t_csfq is not None:
            assert t_corelite <= t_csfq * 1.3, (t_corelite, t_csfq)
        assert res_c.flows[3].losses <= res_q.flows[3].losses
