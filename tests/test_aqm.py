"""Unit tests for the RED and DECbit baseline queues."""

import random

import pytest

from repro.aqm.decbit import DecbitQueue
from repro.aqm.red import RedQueue
from repro.errors import ConfigurationError
from repro.sim.packet import Packet


def data(seq=0):
    return Packet.data(1, "A", "B", seq=seq, now=0.0)


class TestRed:
    def test_no_drops_below_min_thresh(self):
        q = RedQueue(capacity=40, min_thresh=5, max_thresh=15)
        for i in range(4):
            assert q.push(data(i), i * 0.01)
        assert q.early_drops == 0

    def test_average_tracks_occupancy_slowly(self):
        q = RedQueue(capacity=40, avg_weight=0.5)
        for i in range(10):
            q.push(data(i), 0.0)
        assert 0 < q.avg < 10

    def test_forced_drop_above_max_thresh(self):
        q = RedQueue(capacity=40, min_thresh=2, max_thresh=5, avg_weight=1.0)
        outcomes = [q.push(data(i), 0.0) for i in range(12)]
        assert q.forced_drops > 0
        assert not all(outcomes)

    def test_probabilistic_drops_between_thresholds(self):
        q = RedQueue(capacity=1000, min_thresh=5, max_thresh=900, max_prob=0.5,
                     avg_weight=1.0, rng=random.Random(1))
        accepted = sum(q.push(data(i), 0.0) for i in range(200))
        assert q.early_drops > 0
        assert accepted < 200

    def test_idle_period_decays_average(self):
        q = RedQueue(capacity=40, avg_weight=0.5)
        for i in range(10):
            q.push(data(i), 0.0)
        for _ in range(10):
            q.pop(0.0)
        avg_before = q.avg
        q.push(data(99), 10.0)  # long idle gap
        assert q.avg < avg_before

    def test_physical_capacity_still_enforced(self):
        q = RedQueue(capacity=5, min_thresh=2, max_thresh=5, avg_weight=0.001)
        for i in range(10):
            q.push(data(i), 0.0)
        assert q.occupancy <= 5

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            RedQueue(capacity=40, min_thresh=10, max_thresh=5)
        with pytest.raises(ConfigurationError):
            RedQueue(capacity=40, max_prob=0.0)
        with pytest.raises(ConfigurationError):
            RedQueue(capacity=40, avg_weight=2.0)
        with pytest.raises(ConfigurationError):
            RedQueue(capacity=40, mean_packet_time=0.0)


class TestDecbit:
    def test_no_marking_when_queue_short(self):
        q = DecbitQueue(capacity=40)
        p = data(0)
        q.push(p, 0.0)
        assert p.ecn is False

    def test_marks_when_cycle_average_at_least_one(self):
        q = DecbitQueue(capacity=40)
        # build a standing queue: average over the busy period exceeds 1
        packets = [data(i) for i in range(20)]
        for i, p in enumerate(packets):
            q.push(p, i * 0.001)
        assert q.marked > 0
        assert any(p.ecn for p in packets)

    def test_overflow_drops(self):
        q = DecbitQueue(capacity=3)
        results = [q.push(data(i), 0.0) for i in range(5)]
        assert results == [True, True, True, False, False]

    def test_cycle_average_resets_after_idle(self):
        q = DecbitQueue(capacity=40)
        for i in range(10):
            q.push(data(i), i * 0.001)
        while q.pop(0.02) is not None:
            pass
        # new busy period long after: previous cycle included idle time,
        # dropping the average below the mark threshold initially
        p = data(100)
        q.push(p, 10.0)
        assert p.ecn is False

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            DecbitQueue(capacity=40, mark_threshold=0.0)
