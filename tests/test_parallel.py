"""Tests for the parallel batch executor (repro.experiments.parallel).

The heart of the file is the determinism regression: the same scenario
under the same seed must produce bit-identical ``RunResult`` series
through the plain serial path, a 1-worker batch, and a 4-worker batch.
This pins the seed-derivation contract (task seeds come from the task,
never the worker) forever.
"""

import json
import math
import os

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments.figures import figure5_6
from repro.experiments.parallel import (
    BatchRunner,
    BatchTask,
    ScenarioSpec,
    batch_metrics,
    batch_summary_table,
    expand_tasks,
    mean_ci,
    pool_map,
    result_from_payload,
    result_to_payload,
    scalar_metrics,
    throughput_envelope,
)
from repro.experiments.scenario_dsl import run_scenario
from repro.sim.rng import derive_seed

TINY = {
    "scheme": "corelite",
    "duration": 6.0,
    "network": {"num_cores": 2},
    "flows": [
        {"id": 1, "weight": 1},
        {"id": 2, "weight": 2},
        {"id": 3, "weight": 3},
    ],
}


def _spec(name="tiny", scenario=None):
    return ScenarioSpec(name=name, scenario=scenario or TINY)


def _payload_text(result) -> str:
    return json.dumps(result_to_payload(result), sort_keys=True)


# ---------------------------------------------------------------------------
# Determinism regression (the seed-derivation contract)
# ---------------------------------------------------------------------------


def test_serial_and_parallel_batches_are_bit_identical():
    """Same (scenario, seed): direct run == 1-worker batch == 4-worker batch."""
    seeds = [0, 1, 2, 3]
    tasks = [BatchTask(_spec(), seed) for seed in seeds]

    reference = []
    for seed in seeds:
        scenario = dict(TINY)
        scenario["seed"] = seed
        reference.append(run_scenario(scenario))

    one_worker = BatchRunner(workers=1).run(tasks)
    four_workers = BatchRunner(workers=4).run(tasks)

    for ref, serial, parallel in zip(reference, one_worker, four_workers):
        ref_text = _payload_text(ref)
        assert ref_text == _payload_text(serial.result)
        assert ref_text == _payload_text(parallel.result)
        # and the concrete series, not just the rendering:
        for fid in ref.flow_ids:
            assert list(ref.record(fid).rate_series) == \
                list(parallel.result.record(fid).rate_series)
            assert list(ref.record(fid).throughput_series) == \
                list(parallel.result.record(fid).throughput_series)


def test_results_come_back_in_task_order():
    tasks = [BatchTask(_spec(), seed) for seed in (7, 3, 11)]
    results = BatchRunner(workers=2).run(tasks)
    assert [item.task.seed for item in results] == [7, 3, 11]
    assert [item.result.seed for item in results] == [7, 3, 11]


def test_expand_tasks_is_stable_and_prefix_consistent():
    spec = _spec()
    four = expand_tasks(spec, 4, base_seed=9)
    again = expand_tasks(spec, 4, base_seed=9)
    assert [t.seed for t in four] == [t.seed for t in again]
    # replicate i keeps its seed no matter how many replicates run
    two = expand_tasks(spec, 2, base_seed=9)
    assert [t.seed for t in two] == [t.seed for t in four[:2]]
    # the derivation is the registry's rule, name-spaced per scenario
    assert four[0].seed == derive_seed(9, "batch:tiny:0")
    other = expand_tasks(_spec(name="other"), 4, base_seed=9)
    assert [t.seed for t in other] != [t.seed for t in four]


def test_expand_tasks_rejects_bad_count():
    with pytest.raises(ConfigurationError):
        expand_tasks(_spec(), 0)


def test_scenario_path_matches_harness_built_network():
    """The scenario-dict rendering of figure5_6's corelite network is the
    same network: bench_replication's batch rewrite relies on this."""
    duration, seed, num_flows = 12.0, 3, 10
    harness = figure5_6(duration=duration, num_flows=num_flows, seed=seed).corelite
    scenario = {
        "scheme": "corelite",
        "duration": duration,
        "seed": seed,
        "network": {"num_cores": 2},
        "flows": [
            {"id": i, "weight": float(math.ceil(i / 2))}
            for i in range(1, num_flows + 1)
        ],
    }
    assert _payload_text(harness) == _payload_text(run_scenario(scenario))


# ---------------------------------------------------------------------------
# ScenarioSpec / BatchTask validation
# ---------------------------------------------------------------------------


def test_spec_rejects_baked_in_seed():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="x", scenario={"seed": 1, "flows": []})


def test_spec_rejects_non_json_content():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="x", scenario={"flows": [object()]})


def test_spec_snapshots_the_scenario_dict():
    scenario = {"scheme": "corelite", "flows": [{"id": 1}]}
    spec = ScenarioSpec(name="x", scenario=scenario)
    key_before = BatchTask(spec, 0).cache_key()
    scenario["flows"].append({"id": 2})  # caller mutates after submission
    assert BatchTask(spec, 0).cache_key() == key_before


def test_cache_key_depends_on_scenario_and_seed():
    a = BatchTask(_spec(), 0)
    b = BatchTask(_spec(), 1)
    changed = dict(TINY)
    changed["duration"] = 7.0
    c = BatchTask(_spec(scenario=changed), 0)
    keys = {a.cache_key(), b.cache_key(), c.cache_key()}
    assert len(keys) == 3
    assert a.cache_key() == BatchTask(_spec(), 0).cache_key()


def test_runner_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        BatchRunner(workers=0)
    with pytest.raises(ConfigurationError):
        BatchRunner(start_method="no-such-method")
    with pytest.raises(ConfigurationError):
        BatchRunner().run([])
    task = BatchTask(_spec(), 0)
    with pytest.raises(ConfigurationError):
        BatchRunner().run([task, task])


# ---------------------------------------------------------------------------
# The on-disk cache
# ---------------------------------------------------------------------------


def test_cache_round_trip(tmp_path):
    cache = str(tmp_path / "cache")
    runner = BatchRunner(workers=1, cache_dir=cache)
    tasks = [BatchTask(_spec(), seed) for seed in (0, 1)]

    cold = runner.run(tasks)
    assert [item.cached for item in cold] == [False, False]
    assert len(os.listdir(cache)) == 2

    warm = runner.run(tasks)
    assert [item.cached for item in warm] == [True, True]
    for a, b in zip(cold, warm):
        assert _payload_text(a.result) == _payload_text(b.result)


def test_cache_partial_hit_runs_only_misses(tmp_path):
    cache = str(tmp_path / "cache")
    runner = BatchRunner(workers=1, cache_dir=cache)
    runner.run([BatchTask(_spec(), 0)])
    mixed = runner.run([BatchTask(_spec(), 0), BatchTask(_spec(), 5)])
    assert [item.cached for item in mixed] == [True, False]


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = str(tmp_path / "cache")
    runner = BatchRunner(workers=1, cache_dir=cache)
    task = BatchTask(_spec(), 0)
    first = runner.run([task])[0]
    path = os.path.join(cache, f"{task.cache_key()}.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    again = runner.run([task])[0]
    assert not again.cached
    assert _payload_text(first.result) == _payload_text(again.result)
    # and the rerun repaired the entry
    assert runner.run([task])[0].cached


def test_no_cache_dir_disables_caching():
    runner = BatchRunner(workers=1, cache_dir=None)
    task = BatchTask(_spec(), 0)
    assert not runner.run([task])[0].cached
    assert not runner.run([task])[0].cached


# ---------------------------------------------------------------------------
# Payload round-trip
# ---------------------------------------------------------------------------


def test_result_payload_round_trip_is_exact():
    scenario = dict(TINY)
    scenario["seed"] = 2
    scenario["record_queues"] = True
    result = run_scenario(scenario)
    rebuilt = result_from_payload(result_to_payload(result))
    assert _payload_text(result) == _payload_text(rebuilt)
    assert rebuilt.scheme == result.scheme
    assert rebuilt.flow_ids == result.flow_ids
    assert rebuilt.record(1).demand == result.record(1).demand  # inf survives
    assert set(rebuilt.queue_series) == set(result.queue_series)
    # derived quantities work on the rebuilt object
    window = (0.75 * result.duration, result.duration)
    assert rebuilt.mean_rates(window) == result.mean_rates(window)
    assert rebuilt.expected_rates(at_time=3.0) == result.expected_rates(at_time=3.0)


# ---------------------------------------------------------------------------
# Aggregation helpers
# ---------------------------------------------------------------------------


def _batch(seeds=(0, 1, 2)):
    return BatchRunner(workers=1).run([BatchTask(_spec(), s) for s in seeds])


def test_batch_metrics_and_table():
    results = _batch()
    summaries = batch_metrics(results)
    assert set(summaries) == {"weighted_jain", "delivered", "losses", "drops"}
    for summary in summaries.values():
        assert len(summary.values) == 3
        assert summary.lo <= summary.mean <= summary.hi
    table = batch_summary_table(summaries)
    assert "weighted_jain" in table and "ci95" in table


def test_batch_metrics_custom_fn():
    results = _batch(seeds=(0, 1))
    summaries = batch_metrics(
        results, metric_fn=lambda r: {"delivered": r.total_delivered()}
    )
    assert set(summaries) == {"delivered"}
    assert summaries["delivered"].values == tuple(
        float(item.result.total_delivered()) for item in results
    )


def test_scalar_metrics_window():
    result = _batch(seeds=(0,))[0].result
    metrics = scalar_metrics(result, (4.0, 6.0))
    assert 0.0 < metrics["weighted_jain"] <= 1.0
    assert metrics["delivered"] > 0


def test_mean_ci():
    mean, half = mean_ci([2.0])
    assert (mean, half) == (2.0, 0.0)
    mean, half = mean_ci([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    # t(df=2, 95%) = 4.303; stdev = 1; n = 3
    assert half == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)
    with pytest.raises(ConfigurationError):
        mean_ci([])


def test_throughput_envelope():
    results = _batch()
    env = throughput_envelope(results, flow_id=2, which="throughput")
    assert set(env) == {"lo", "mean", "hi"}
    assert len(env["mean"]) == len(env["lo"]) == len(env["hi"]) > 0
    for (t_lo, lo), (t_m, m), (t_hi, hi) in zip(env["lo"], env["mean"], env["hi"]):
        assert t_lo == t_m == t_hi
        assert lo <= m + 1e-12 and m <= hi + 1e-12
    with pytest.raises(ConfigurationError):
        throughput_envelope(results, flow_id=2, which="nope")


def test_throughput_envelope_rejects_mismatched_grids():
    short = dict(TINY)
    short["duration"] = 4.0
    mixed = BatchRunner(workers=1).run(
        [BatchTask(_spec(), 0), BatchTask(_spec(name="short", scenario=short), 0)]
    )
    with pytest.raises(ConfigurationError):
        throughput_envelope(mixed, flow_id=1)


def test_pool_map_matches_inline():
    items = list(range(6))
    assert pool_map(_square, items, workers=1) == [i * i for i in items]
    assert pool_map(_square, items, workers=2) == [i * i for i in items]


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# The CLI subcommand
# ---------------------------------------------------------------------------


def test_cli_batch_runs_and_caches(tmp_path, capsys):
    scenario_path = tmp_path / "tiny.json"
    scenario_path.write_text(json.dumps(TINY), encoding="utf-8")
    cache = str(tmp_path / "cache")
    out = str(tmp_path / "out.json")

    argv = ["batch", str(scenario_path), "--seeds", "0,1", "--workers", "1",
            "--cache-dir", cache, "--json", out]
    assert cli_main(argv) == 0
    first = capsys.readouterr().out
    assert "2 tasks" in first and "0 cache hit(s)" in first

    assert cli_main(argv) == 0
    second = capsys.readouterr().out
    assert "2 cache hit(s)" in second

    with open(out, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["cache_hits"] == 2
    assert [task["seed"] for task in payload["tasks"]] == [0, 1]
    assert "weighted_jain" in payload["summary"]


def test_cli_batch_derived_seeds(tmp_path, capsys):
    scenario_path = tmp_path / "tiny.json"
    scenario_path.write_text(json.dumps(TINY), encoding="utf-8")
    assert cli_main(["batch", str(scenario_path), "--num-seeds", "2",
                     "--base-seed", "5", "--no-cache"]) == 0
    out = capsys.readouterr().out
    expected = derive_seed(5, "batch:tiny:0")
    assert str(expected) in out
