"""Unit tests for the ablation machinery (short durations)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    AblationPoint,
    compare_feedback_schemes,
    grid_study,
    sweep_alpha,
    sweep_beta,
    sweep_qthresh,
)


DURATION = 45.0  # short but past the convergence transient


class TestSweeps:
    def test_sweep_returns_one_point_per_value(self):
        points = sweep_qthresh(values=(4.0, 8.0), duration=DURATION)
        assert [p.value for p in points] == [4.0, 8.0]
        for p in points:
            assert isinstance(p, AblationPoint)
            assert p.weighted_jain > 0.9
            assert p.mae_vs_expected >= 0.0

    def test_alpha_and_beta_sweeps_run(self):
        for sweep in (sweep_alpha, sweep_beta):
            points = sweep(values=(1.0, 2.0), duration=DURATION)
            assert len(points) == 2
            for p in points:
                assert p.weighted_jain > 0.9

    def test_feedback_comparison_labels(self):
        points = compare_feedback_schemes(duration=DURATION)
        assert {p.value for p in points} == {"marker_cache", "selective"}


class TestGridStudy:
    def test_cartesian_product(self):
        points = grid_study(
            {"qthresh": (4.0, 8.0), "fn_k": (0.0, 0.02)}, duration=DURATION
        )
        assert len(points) == 4
        combos = {tuple(sorted(p.value.items())) for p in points}
        assert (("fn_k", 0.0), ("qthresh", 4.0)) in combos

    def test_empty_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_study({}, duration=DURATION)
        with pytest.raises(ConfigurationError):
            grid_study({"qthresh": ()}, duration=DURATION)

    def test_interaction_example(self):
        """A fast edge epoch (0.1 s) alone overruns the buffers; pairing
        it with a stronger beta restores most of the losslessness —
        the interaction the single-field sweeps cannot show."""
        points = grid_study(
            {"edge_epoch": (0.1,), "beta": (1.0, 3.0)}, duration=DURATION
        )
        weak, strong = points
        assert weak.value["beta"] == 1.0
        assert strong.drops < weak.drops
