"""Tests for the Chiu-Jain fluid model, and its agreement with packets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fairness.chiu_jain import (
    FluidTrace,
    convergence_epochs,
    simulate_fluid_limd,
)


class TestFluidModel:
    def test_equal_weights_converge_to_equal_rates(self):
        trace = simulate_fluid_limd([1.0, 1.0, 1.0], capacity=300.0)
        assert trace.fairness() > 0.999
        for rate in trace.final:
            assert rate == pytest.approx(100.0, rel=0.05)

    def test_weighted_fixed_point(self):
        trace = simulate_fluid_limd([1.0, 2.0, 3.0], capacity=600.0)
        assert trace.final[0] == pytest.approx(100.0, rel=0.05)
        assert trace.final[1] == pytest.approx(200.0, rel=0.05)
        assert trace.final[2] == pytest.approx(300.0, rel=0.05)

    def test_convergence_from_skewed_start(self):
        trace = simulate_fluid_limd(
            [1.0, 1.0], capacity=200.0, initial=[199.0, 1.0]
        )
        assert trace.fairness() > 0.999

    def test_aggregate_tracks_capacity(self):
        trace = simulate_fluid_limd([1.0, 4.0], capacity=500.0)
        assert trace.aggregate() == pytest.approx(500.0, rel=0.05)

    def test_convergence_epochs_detects_settling(self):
        trace = simulate_fluid_limd(
            [1.0, 1.0], capacity=200.0, initial=[199.0, 1.0], epochs=500
        )
        settled = convergence_epochs(trace, tolerance=0.02)
        assert 0 < settled < 400

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_fluid_limd([], capacity=100.0)
        with pytest.raises(ConfigurationError):
            simulate_fluid_limd([1.0], capacity=0.0)
        with pytest.raises(ConfigurationError):
            simulate_fluid_limd([1.0], capacity=10.0, epochs=0)
        with pytest.raises(ConfigurationError):
            simulate_fluid_limd([1.0, 1.0], capacity=10.0, initial=[1.0])
        trace = simulate_fluid_limd([1.0], capacity=10.0)
        with pytest.raises(ConfigurationError):
            convergence_epochs(trace, tolerance=0.0)

    @given(
        st.lists(st.floats(0.5, 8.0), min_size=2, max_size=10),
        st.floats(100.0, 2000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_converges_for_any_weights(self, weights, capacity):
        """The Chiu-Jain property the paper leans on: weighted LIMD with
        proportional feedback converges to weighted fairness from any
        start, for any weights."""
        # alpha scaled to capacity so the +-alpha sawtooth stays small
        # relative to the smallest fair rate (it is an oscillation, not a
        # convergence error).
        trace = simulate_fluid_limd(
            weights, capacity=capacity, epochs=3000, alpha=capacity / 1000.0
        )
        assert trace.fairness() > 0.995
        assert trace.aggregate() <= capacity * 1.1


class TestFluidVsPackets:
    def test_fluid_fixed_point_matches_packet_steady_state(self):
        """The fluid prediction and the packet simulator agree on where
        the rates settle (within the packet system's oscillation)."""
        from repro.experiments.network import CoreliteNetwork, FlowSpec

        weights = [1.0, 2.0, 3.0]
        fluid = simulate_fluid_limd(weights, capacity=500.0)

        net = CoreliteNetwork.single_bottleneck(seed=0)
        for fid, w in enumerate(weights, start=1):
            net.add_flow(FlowSpec(flow_id=fid, weight=w))
        res = net.run(until=120.0)
        measured = res.mean_rates((90.0, 120.0))

        for fid, fluid_rate in zip((1, 2, 3), fluid.final):
            assert measured[fid] == pytest.approx(fluid_rate, rel=0.15), (
                fid, measured[fid], fluid_rate,
            )
