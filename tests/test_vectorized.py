"""PR 7 pins: the vectorized edge control plane and aggregated sources.

Four layers of protection:

* **Scalar replay fingerprints** — the default (object-based) build path
  must stay byte-identical to the pre-vectorization code: same per-flow
  series, same packet-id counter, same event count, hashed and pinned.
* **Vectorized equivalence** — with the batched control transport off,
  the array sweeps are a float-exact mirror of the scalar controllers,
  so vectorized runs must match scalar runs *exactly* (which trivially
  satisfies the Jain-ratio / 2%-per-flow statistical pins).  With
  batching on (the default in vectorized mode), feedback is quantized to
  core epochs, so only the statistical pins apply.
* **Aggregated sources** — ``PacedAggregateSource`` unit behavior and
  the ``aggregate`` knob end to end (builder and scenario DSL).
* **Array primitives** — ``FlowArrayBank`` slot allocation/growth and
  ``ArrayRateController`` parity with the scalar ``RateController``.
"""

import hashlib
import random

import pytest

from repro.core.adaptation import Phase, RateController
from repro.core.config import CoreliteConfig
from repro.errors import ConfigurationError, FlowError
from repro.experiments.builder import CloudBuilder
from repro.experiments.scenario_dsl import build_network, run_scenario
from repro.experiments.scenarios import (
    WEIGHTS_41,
    mesh_flows,
    parking_lot_flows,
    topology1_flows,
)
from repro.experiments.topospec import FlowPathSpec, TopologySpec
from repro.fairness.metrics import jain_index
from repro.sim.engine import Simulator
from repro.sim.flowarrays import (
    ArrayPacedSender,
    ArrayRateController,
    FlowArrayBank,
)
from repro.sim.packet import Packet, PacketKind
from repro.sim.sources import PacedAggregateSource, SourceSpec


# ---------------------------------------------------------------------------
# Scenario constructors shared by the fingerprint and equivalence tests
# ---------------------------------------------------------------------------


def _chain4_corelite(vectorized=False, config=None):
    builder = CloudBuilder(
        TopologySpec.chain(4), scheme="corelite", seed=3,
        vectorized=vectorized, config=config,
    )
    builder.add_flows(topology1_flows(WEIGHTS_41, {}))
    return builder.build(), 12.0


def _chain2_csfq(vectorized=False, config=None):
    builder = CloudBuilder(
        TopologySpec.chain(2), scheme="csfq", seed=1,
        vectorized=vectorized, config=config,
    )
    builder.add_flow(FlowPathSpec(1, weight=2.0, ingress_core="C1", egress_core="C2"))
    builder.add_flow(FlowPathSpec(2, weight=1.0, ingress_core="C1", egress_core="C2"))
    return builder.build(), 12.0


def _parking_corelite(vectorized=False, config=None):
    builder = CloudBuilder(
        TopologySpec.parking_lot(3), scheme="corelite", seed=5,
        vectorized=vectorized, config=config,
    )
    builder.add_flows(parking_lot_flows())
    return builder.build(), 10.0


def _mesh_csfq(vectorized=False, config=None):
    builder = CloudBuilder(
        TopologySpec.mesh(), scheme="csfq", seed=2,
        vectorized=vectorized, config=config,
    )
    builder.add_flows(mesh_flows())
    return builder.build(), 10.0


def _flow_scaling_corelite_256(vectorized=False, config=None):
    from repro.perf import _flow_scaling_cloud

    assert config is None
    return _flow_scaling_cloud("corelite", 256, vectorized=vectorized), 8.0


SCENARIOS = {
    "chain4_corelite": _chain4_corelite,
    "chain2_csfq": _chain2_csfq,
    "parking_corelite": _parking_corelite,
    "mesh_csfq": _mesh_csfq,
    "flow_scaling_corelite_256": _flow_scaling_corelite_256,
}

#: sha256 replay fingerprints recorded from the pre-PR7 scalar code.
#: The default build path must keep reproducing these byte-for-byte.
FINGERPRINTS = {
    "chain4_corelite":
        "f248531b3ef37ab7250704e7600b5a04cffbab8d9f4af84b0175c0fa785bd532",
    "chain2_csfq":
        "a2921b4a0b419d7f145b725ebb19b722d632e885e15d22191f4ed091ff1fbc55",
    "parking_corelite":
        "c99fdf984ed7b10714c9103176efee371df398cf3a6dcc396862cd27c1e60296",
    "mesh_csfq":
        "5f8ed013d8e67c04597479d87d37a70f0d858a8d68c59eddf9d16ba07baec770",
    "flow_scaling_corelite_256":
        "43f05fde0a85db1a3303737a9a0cb86059f2b9ab9c510c38e5d1940ca67a1f98",
}


def _run_and_fingerprint(cloud, until):
    """Run the cloud and hash everything replay-relevant: the sorted
    per-flow delivery/loss/series tuples plus the simulator's packet-id
    counter and executed-event count (so a change in event *structure*
    trips the pin even when the results happen to agree)."""
    result = cloud.run(until=until)
    payload = []
    for flow_id, record in sorted(result.flows.items()):
        payload.append(
            (
                flow_id,
                record.delivered,
                record.losses,
                tuple(record.rate_series.values),
                tuple(record.throughput_series.values),
                tuple(record.cumulative_series.values),
            )
        )
    blob = repr((payload, cloud.sim._next_pid, cloud.sim.events_executed))
    digest = hashlib.sha256(blob.encode()).hexdigest()
    delivered = {fid: record.delivered for fid, record in result.flows.items()}
    weights = {fid: record.weight for fid, record in result.flows.items()}
    return digest, delivered, weights


@pytest.fixture(scope="module")
def scalar_runs():
    """One scalar (default-path) run per pinned scenario, shared by the
    fingerprint and equivalence tests so each scenario simulates once."""
    return {name: _run_and_fingerprint(*make()) for name, make in SCENARIOS.items()}


# ---------------------------------------------------------------------------
# Scalar replay fingerprints (byte-identity of the default path)
# ---------------------------------------------------------------------------


def test_scalar_replay_fingerprints_unchanged(scalar_runs):
    mismatched = {
        name: scalar_runs[name][0]
        for name in FINGERPRINTS
        if scalar_runs[name][0] != FINGERPRINTS[name]
    }
    assert not mismatched, (
        "default (scalar) build path no longer replays byte-identical to "
        f"the pre-vectorization code: {mismatched}"
    )


# ---------------------------------------------------------------------------
# Vectorized vs scalar equivalence
# ---------------------------------------------------------------------------

_EQUIV_SCENARIOS = ("chain4_corelite", "parking_corelite", "mesh_csfq")


def _unbatched_config(name):
    """Vectorized-but-unbatched config for corelite; csfq has no batched
    transport, so its vectorized path needs no override."""
    return CoreliteConfig(batched_control=False) if "corelite" in name else None


@pytest.mark.parametrize("name", _EQUIV_SCENARIOS)
def test_vectorized_math_matches_scalar_exactly(scalar_runs, name):
    """The array sweeps (batched transport off) are a float-exact mirror
    of the scalar controllers: identical per-flow deliveries, hence the
    ISSUE's statistical pins (Jain ratio within 1%, per-flow delivered
    within 2%) hold with zero slack."""
    _, scalar_delivered, weights = scalar_runs[name]
    cloud, until = SCENARIOS[name](vectorized=True, config=_unbatched_config(name))
    result = cloud.run(until=until)
    vec_delivered = {fid: r.delivered for fid, r in result.flows.items()}

    assert vec_delivered == scalar_delivered

    scalar_jain = jain_index(
        [scalar_delivered[f] / weights[f] for f in sorted(scalar_delivered)]
    )
    vec_jain = jain_index(
        [vec_delivered[f] / weights[f] for f in sorted(vec_delivered)]
    )
    assert 0.99 <= vec_jain / scalar_jain <= 1.01
    for fid in scalar_delivered:
        assert abs(vec_delivered[fid] - scalar_delivered[fid]) <= (
            0.02 * max(1, scalar_delivered[fid])
        )


def test_vectorized_batched_is_statistically_equivalent(scalar_runs):
    """The default vectorized mode additionally batches the control
    plane (markers merged onto data, feedback coalesced per core epoch),
    which quantizes feedback arrival times — per-flow trajectories drift
    a few percent, but the fairness outcome must be preserved."""
    _, scalar_delivered, weights = scalar_runs["chain4_corelite"]
    cloud, until = SCENARIOS["chain4_corelite"](vectorized=True)
    result = cloud.run(until=until)
    vec_delivered = {fid: r.delivered for fid, r in result.flows.items()}

    scalar_jain = jain_index(
        [scalar_delivered[f] / weights[f] for f in sorted(scalar_delivered)]
    )
    vec_jain = jain_index(
        [vec_delivered[f] / weights[f] for f in sorted(vec_delivered)]
    )
    assert 0.99 <= vec_jain / scalar_jain <= 1.01
    # Aggregate throughput within 5%; individual flows within 10%
    # (measured worst case ~8% on this scenario, driven by the core-epoch
    # quantization of feedback, not by unfairness).
    assert sum(vec_delivered.values()) == pytest.approx(
        sum(scalar_delivered.values()), rel=0.05
    )
    for fid in scalar_delivered:
        assert abs(vec_delivered[fid] - scalar_delivered[fid]) <= (
            0.10 * max(1, scalar_delivered[fid])
        ), fid


# ---------------------------------------------------------------------------
# Batched control plane
# ---------------------------------------------------------------------------


class TestBatchedControl:
    def test_config_rejects_non_tristate(self):
        with pytest.raises(ConfigurationError):
            CoreliteConfig(batched_control=7)
        for value in (None, True, False):
            assert CoreliteConfig(batched_control=value).batched_control is value

    @staticmethod
    def _tiny_vec_cloud():
        # Tight core capacity so the two backlogged flows actually
        # congest the C1->C2 link and the feedback loop engages.
        builder = CloudBuilder(
            TopologySpec.chain(2, capacity_pps=30.0),
            scheme="corelite", seed=0, vectorized=True,
        )
        builder.add_flow(
            FlowPathSpec(1, weight=1.0, ingress_core="C1", egress_core="C2")
        )
        builder.add_flow(
            FlowPathSpec(2, weight=2.0, ingress_core="C1", egress_core="C2")
        )
        return builder.build()

    def test_receive_feedback_counts_batched_seq(self):
        """A batched FEEDBACK packet carries its logical marker count in
        ``seq``; per-marker feedback leaves seq 0 and counts as one."""
        cloud = self._tiny_vec_cloud()
        edge = cloud.edges["Ein1"]
        edge.start_flow(1)

        def feedback(seq, link):
            packet = Packet(
                PacketKind.FEEDBACK, 1, src="C1", dst="Ein1",
                size=0.0, seq=seq, created_at=0.0, sim=cloud.sim,
            )
            packet.feedback_from = link
            return packet

        edge.receive_feedback(feedback(3, "C1->C2"))
        state = edge._ingress_state(1)
        assert state.feedback_peak == 3
        # Unbatched feedback (seq 0) from the same link adds one.
        edge.receive_feedback(feedback(0, "C1->C2"))
        assert state.feedback_peak == 4
        # The edge reacts to the max over core links, not the sum.
        edge.receive_feedback(feedback(2, "C2->C1"))
        assert state.feedback_peak == 4
        assert state.feedback == {"C1->C2": 4, "C2->C1": 2}

    def test_receive_feedback_guards(self):
        cloud = self._tiny_vec_cloud()
        edge = cloud.edges["Ein1"]
        with pytest.raises(FlowError):
            edge.receive_feedback(
                Packet(PacketKind.DATA, 1, src="C1", dst="Ein1", sim=cloud.sim)
            )
        stray = Packet(
            PacketKind.FEEDBACK, 999, src="C1", dst="Ein1",
            size=0.0, sim=cloud.sim,
        )
        before = edge.stray_feedback
        edge.receive_feedback(stray)
        assert edge.stray_feedback == before + 1

    def test_batched_run_closes_the_feedback_loop(self):
        """End to end in the default vectorized mode: congested cores emit
        (batched) feedback and the edge controllers react to it."""
        cloud = self._tiny_vec_cloud()
        cloud.run(until=8.0)
        emitted = sum(
            cloud.core_router(name).feedback_emitted for name in ("C1", "C2")
        )
        assert emitted > 0
        decreases = sum(
            cloud.edges[name]._ingress_state(fid).controller.decreases
            for name, fid in (("Ein1", 1), ("Ein2", 2))
        )
        assert decreases > 0
        # ...and the weighted outcome is sane: flow 2 (w=2) ends up with
        # the higher allowed rate.
        assert cloud.edges["Ein2"]._ingress_state(2).controller.rate > (
            cloud.edges["Ein1"]._ingress_state(1).controller.rate
        )


# ---------------------------------------------------------------------------
# Array primitives
# ---------------------------------------------------------------------------


class TestFlowArrayBank:
    def test_alloc_grows_and_preserves(self):
        bank = FlowArrayBank(capacity=2)
        assert bank.alloc() == 0
        assert bank.alloc() == 1
        bank.rate[0] = 5.0
        bank.feedback_peak[1] = 7
        # Third alloc forces a doubling; existing slot data must survive.
        assert bank.alloc() == 2
        assert bank.capacity == 4
        assert bank.size == 3
        assert bank.rate[0] == 5.0
        assert bank.feedback_peak[1] == 7
        for _ in range(10):
            bank.alloc()
        assert bank.size == 13
        assert bank.capacity >= 13

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            FlowArrayBank(capacity=0)


class TestArrayRateController:
    def test_parity_with_scalar_controller(self):
        """Driven through the same epoch sequence, the array-backed
        controller and the scalar one must agree exactly — rates, phase
        transitions and all adaptation counters."""
        config = CoreliteConfig()
        scalar = RateController(config, weight=2.0)
        bank = FlowArrayBank()
        array = ArrayRateController(config, 2.0, bank, bank.alloc())

        epoch = config.edge_epoch
        feedback = [0, 0, 0, 1, 0, 3, 2, 0, 0, 5, 0, 1, 0, 0, 0]
        for step, count in enumerate(feedback):
            now = (step + 1) * epoch
            assert array.on_epoch(count, now) == scalar.on_epoch(count, now)
            assert array.phase is scalar.phase
        assert array.rate == scalar.rate
        assert array.increases == scalar.increases
        assert array.decreases == scalar.decreases
        assert array.feedback_total == scalar.feedback_total
        assert array.slow_start_exits == scalar.slow_start_exits

        array.restart(100.0)
        scalar.restart(100.0)
        assert array.rate == scalar.rate
        assert array.phase is Phase.SLOW_START

    def test_validation(self):
        config = CoreliteConfig()
        bank = FlowArrayBank()
        with pytest.raises(ConfigurationError):
            ArrayRateController(config, 0.0, bank, bank.alloc())
        with pytest.raises(ConfigurationError):
            ArrayRateController(config, 1.0, bank, bank.alloc(), alpha_scale=0.0)
        with pytest.raises(ConfigurationError):
            ArrayRateController(config, 1.0, bank, bank.alloc(), min_rate=-1.0)
        controller = ArrayRateController(config, 1.0, bank, bank.alloc())
        with pytest.raises(ConfigurationError):
            controller.on_epoch(-1, 0.0)


class TestArrayPacedSender:
    def test_snapshot_columns_track_programming(self):
        sim = Simulator()
        bank = FlowArrayBank()
        slot = bank.alloc()
        sent = []
        sender = ArrayPacedSender(
            bank, slot, sim, 10.0, lambda: bool(sent.append(1)) or True
        )
        assert bank.shaper_rate[slot] == sender._rate
        sender.set_rate(25.0)
        assert bank.shaper_rate[slot] == 25.0
        assert bank.shaper_credit[slot] == sender._credit
        sender.start()
        sim.run(until=1.0)
        assert sent, "programmed sender never emitted"


# ---------------------------------------------------------------------------
# Aggregated sources
# ---------------------------------------------------------------------------


class TestPacedAggregateSource:
    @staticmethod
    def _drive(model, duration, seed=0):
        sim = Simulator()
        deposits = []
        model.start(
            sim, lambda mid, n: deposits.append((mid, n)), random.Random(seed)
        )
        sim.run(until=duration)
        return deposits

    def test_paced_round_robin_is_deterministic(self):
        model = PacedAggregateSource((1, 2, 3), member_rate=10.0, kind="paced")
        assert model.aggregate_rate == pytest.approx(30.0)
        deposits = self._drive(model, duration=0.5)
        # 30 pkt/s for 0.5 s -> ~15 arrivals, one per 1/30 s, members
        # cycling 1, 2, 3, 1, 2, ...
        assert len(deposits) == pytest.approx(15, abs=1)
        members = [mid for mid, _ in deposits]
        assert members == [1 + (i % 3) for i in range(len(members))]
        assert all(n == 1 for _, n in deposits)
        assert model.packets_offered == len(deposits)

    def test_poisson_superposition_statistics(self):
        model = PacedAggregateSource(
            tuple(range(1, 5)), member_rate=50.0, kind="poisson"
        )
        deposits = self._drive(model, duration=4.0, seed=7)
        total = len(deposits)
        # Aggregate Poisson(200/s) over 4 s.
        assert total == pytest.approx(800, rel=0.15)
        per_member = {mid: 0 for mid in range(1, 5)}
        for mid, _ in deposits:
            per_member[mid] += 1
        # Thinning: each member sees ~1/4 of the arrivals.
        for count in per_member.values():
            assert count == pytest.approx(total / 4, rel=0.25)

    def test_stop_halts_the_timer_chain(self):
        sim = Simulator()
        model = PacedAggregateSource((1, 2), member_rate=100.0)
        seen = []
        model.start(sim, lambda mid, n: seen.append(mid), random.Random(0))
        sim.run(until=0.1)
        model.stop()
        before = len(seen)
        sim.run(until=1.0)
        assert len(seen) == before

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PacedAggregateSource((), member_rate=1.0)
        with pytest.raises(ConfigurationError):
            PacedAggregateSource((1,), member_rate=0.0)
        with pytest.raises(ConfigurationError):
            PacedAggregateSource((1,), member_rate=1.0, kind="fractal")


class TestAggregateBuckets:
    def test_flow_scaling_cloud_validates_aggregate(self):
        from repro.perf import _flow_scaling_cloud

        with pytest.raises(ConfigurationError):
            _flow_scaling_cloud("corelite", 8, aggregate=0)
        with pytest.raises(ConfigurationError):
            _flow_scaling_cloud("corelite", 10, aggregate=4)

    def test_backlogged_bucket_matches_member_flows_statistically(self):
        """16 flows as 4 aggregate-4 buckets vs 16 individual flows: the
        per-weight-class delivered totals must agree within a few percent
        (the bucket controller is the exact N-scaled twin)."""
        from repro.perf import _flow_scaling_cloud

        def class_totals(aggregate):
            cloud = _flow_scaling_cloud(
                "corelite", 16, vectorized=True, aggregate=aggregate
            )
            result = cloud.run(until=12.0)
            totals = {}
            for fid, record in result.flows.items():
                totals.setdefault(record.weight, 0)
                totals[record.weight] += record.delivered
            return totals

        individual = class_totals(1)
        bucketed = class_totals(4)
        # Bucket b carries weight 1 + (b % 4) for 4 members, i.e. weight
        # class w appears with total weight 4w either way.
        assert set(bucketed) == {4.0 * w for w in individual}
        for weight, total in individual.items():
            assert bucketed[4.0 * weight] == pytest.approx(total, rel=0.15)

    def test_sourced_bucket_uses_aggregate_generator(self):
        """A non-backlogged aggregate bucket runs ONE generator process
        (the Poisson superposition) and still delivers per-member."""
        builder = CloudBuilder(
            TopologySpec.chain(2), scheme="corelite", seed=4, vectorized=True
        )
        builder.add_flow(
            FlowPathSpec(
                1,
                weight=1.0,
                ingress_core="C1",
                egress_core="C2",
                aggregate=4,
                source=SourceSpec("poisson", mean_rate=20.0),
            )
        )
        cloud = builder.build(finalize=False)
        result = cloud.run(until=6.0)
        assert result.flows[1].delivered > 0
        mux = cloud.mux_for(1)
        assert mux.micro_ids == (1, 2, 3, 4)
        # One superposed generator fed all four members...
        assert sum(mux.offered.values()) > 0
        assert all(count > 0 for count in mux.offered.values())
        # ...and the round-robin shaper served each of them.
        assert all(count > 0 for count in mux.sent.values())
        assert sum(mux.sent.values()) >= result.flows[1].delivered


# ---------------------------------------------------------------------------
# Scenario DSL knobs
# ---------------------------------------------------------------------------


class TestDslKnobs:
    def test_vectorized_and_aggregate_flags(self):
        scenario = {
            "scheme": "corelite",
            "seed": 2,
            "duration": 6.0,
            "vectorized": True,
            "flows": [
                {"id": 1, "weight": 1.0, "aggregate": 3,
                 "source": {"kind": "poisson", "mean_rate": 15.0}},
                {"id": 2, "weight": 2.0},
            ],
        }
        net = build_network(scenario)
        assert net.flows[1].aggregate == 3
        result = run_scenario(scenario)
        assert result.flows[1].delivered > 0
        assert result.flows[2].delivered > 0

    def test_vectorized_defaults_off(self):
        scenario = {
            "scheme": "corelite",
            "flows": [{"id": 1, "weight": 1.0}],
        }
        build_network(scenario)  # scalar default still builds

    def test_aggregate_validation_via_dsl(self):
        scenario = {
            "scheme": "corelite",
            "flows": [{"id": 1, "weight": 1.0, "aggregate": 0}],
        }
        with pytest.raises(FlowError):
            build_network(scenario)
