"""Unit and property tests for the CSFQ exponential rate estimator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csfq.estimator import ExponentialRateEstimator
from repro.errors import ConfigurationError, SimulationError


def test_constant_stream_converges_to_true_rate():
    est = ExponentialRateEstimator(k=0.1)
    t = 0.0
    for _ in range(200):
        t += 0.01  # 100 pkt/s
        est.update(t, 1.0)
    assert est.rate == pytest.approx(100.0, rel=0.02)


def test_formula_single_step():
    est = ExponentialRateEstimator(k=0.1, initial_rate=50.0)
    est.update(0.05, 1.0)
    w = math.exp(-0.05 / 0.1)
    assert est.rate == pytest.approx((1 - w) * (1.0 / 0.05) + w * 50.0)


def test_simultaneous_arrivals_accumulate():
    est = ExponentialRateEstimator(k=0.1)
    est.update(0.0, 1.0)  # gap 0 from start -> pending
    est.update(0.0, 1.0)  # still pending
    est.update(0.01, 1.0)
    w = math.exp(-0.01 / 0.1)
    assert est.rate == pytest.approx((1 - w) * (3.0 / 0.01))


def test_rate_decays_when_idle():
    est = ExponentialRateEstimator(k=0.1)
    t = 0.0
    for _ in range(100):
        t += 0.01
        est.update(t, 1.0)
    busy_rate = est.rate
    assert est.reading(t + 1.0) < busy_rate * 0.01


def test_reading_is_side_effect_free():
    est = ExponentialRateEstimator(k=0.1, initial_rate=10.0)
    est.reading(5.0)
    assert est.rate == 10.0


def test_restart_zeroes():
    est = ExponentialRateEstimator(k=0.1, initial_rate=10.0)
    est.restart(3.0)
    assert est.rate == 0.0
    est.update(3.05, 1.0)
    assert est.rate > 0


def test_time_backwards_rejected():
    est = ExponentialRateEstimator(k=0.1, start_time=1.0)
    with pytest.raises(SimulationError):
        est.update(0.5, 1.0)


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        ExponentialRateEstimator(k=0.0)
    with pytest.raises(ConfigurationError):
        ExponentialRateEstimator(k=0.1, initial_rate=-1.0)
    est = ExponentialRateEstimator(k=0.1)
    with pytest.raises(ConfigurationError):
        est.update(1.0, -1.0)


@given(st.floats(10.0, 1000.0), st.floats(0.02, 0.5))
@settings(max_examples=40, deadline=None)
def test_converges_within_a_few_k(true_rate, k):
    est = ExponentialRateEstimator(k=k)
    gap = 1.0 / true_rate
    t = 0.0
    # run for 10 K worth of packets
    for _ in range(int(10 * k / gap) + 10):
        t += gap
        est.update(t, 1.0)
    assert est.rate == pytest.approx(true_rate, rel=0.05)


@given(st.lists(st.tuples(st.floats(1e-4, 1.0), st.floats(0.0, 5.0)), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_rate_never_negative(arrivals):
    est = ExponentialRateEstimator(k=0.1)
    t = 0.0
    for gap, size in arrivals:
        t += gap
        est.update(t, size)
        assert est.rate >= 0.0
