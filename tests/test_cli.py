"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3_4" in out
    assert "aqm" in out


def test_version_flag():
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_parser_has_all_figures():
    parser = build_parser()
    for name in ("fig3_4", "fig5_6", "fig7_8", "fig9_10"):
        args = parser.parse_args([name])
        assert args.figure == name


def test_fig5_6_short_run_and_json(tmp_path, capsys):
    out_file = tmp_path / "out.json"
    assert main(["fig5_6", "--duration", "12", "--no-chart", "--json", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "corelite" in out and "csfq" in out
    payload = json.loads(out_file.read_text())
    assert payload["figure"] == "fig5_6"
    assert "mean_rates" in payload["corelite"]


def test_ablation_command(capsys):
    assert main(["ablation", "feedback", "--duration", "10"]) == 0
    out = capsys.readouterr().out
    assert "marker_cache" in out
    assert "selective" in out
