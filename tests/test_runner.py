"""Unit tests for RunResult and FlowRecord."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import FlowRecord, RunResult
from repro.sim.monitor import Series


def make_record(fid, weight, schedule=((0.0, 100.0),), links=("L",), rates=None):
    rate_series = Series(f"rate:{fid}")
    tput = Series(f"tput:{fid}")
    cum = Series(f"cum:{fid}")
    for t, v in rates or []:
        rate_series.append(t, v)
        tput.append(t, v)
        cum.append(t, v * t)
    return FlowRecord(
        flow_id=fid,
        weight=weight,
        schedule=schedule,
        path_links=links,
        rate_series=rate_series,
        throughput_series=tput,
        cumulative_series=cum,
    )


@pytest.fixture
def result():
    flows = {
        1: make_record(1, 1.0, rates=[(t, 25.0) for t in range(10)]),
        2: make_record(2, 3.0, rates=[(t, 75.0) for t in range(10)]),
    }
    return RunResult(
        scheme="corelite",
        duration=10.0,
        capacities={"L": 100.0},
        flows=flows,
        total_drops=0,
        seed=0,
    )


def test_flow_ids_sorted(result):
    assert result.flow_ids == [1, 2]


def test_mean_rates(result):
    rates = result.mean_rates((0.0, 10.0))
    assert rates[1] == pytest.approx(25.0)
    assert rates[2] == pytest.approx(75.0)


def test_expected_rates_from_maxmin(result):
    expected = result.expected_rates(at_time=5.0)
    assert expected[1] == pytest.approx(25.0)
    assert expected[2] == pytest.approx(75.0)


def test_expected_rates_respect_schedule(result):
    result.flows[2].schedule = ((20.0, 30.0),)  # inactive at t=5
    expected = result.expected_rates(at_time=5.0)
    assert expected == {1: pytest.approx(100.0)}


def test_expected_rates_empty_when_nothing_active(result):
    assert result.expected_rates(at_time=500.0) == {}


def test_active_at(result):
    rec = result.flows[1]
    assert rec.active_at(0.0)
    assert rec.active_at(99.9)
    assert not rec.active_at(100.0)


def test_fairness_at_weighted(result):
    assert result.fairness_at((0.0, 10.0)) == pytest.approx(1.0)


def test_summary_rows(result):
    rows = result.summary_rows((0.0, 10.0))
    assert len(rows) == 2
    fid, weight, measured, expected, losses = rows[0]
    assert (fid, weight) == (1, 1.0)
    assert measured == pytest.approx(25.0)
    assert expected == pytest.approx(25.0)


def test_record_unknown_flow(result):
    with pytest.raises(ConfigurationError):
        result.record(99)


def test_totals(result):
    assert result.total_losses() == 0
    assert result.total_delivered() == 0
