"""End-to-end weighted fairness on multi-bottleneck topologies.

The chain experiments (test_integration.py) exercise the paper's own
Topology 1; these tests push the same mechanisms through the declarative
pipeline onto the two classic stressors the chain cannot express:

* the parking lot — one long weighted flow against per-hop cross
  traffic, where per-link unweighted fairness gets the answer wrong; and
* the diamond-plus-chord mesh — links congested at *different* per-unit
  levels, where each flow must settle at its own bottleneck's level.

Both feedback schemes are exercised.  The selective scheme (§3.2, the
paper's evaluation choice) is unbiased for multi-hop flows, so it gets
tight tolerances against the weighted max-min reference.  The
marker-cache scheme (§2.2) samples feedback per congested link, so a
flow crossing k congested links is throttled ~k times as often and
settles below its reference — the very bias §3.2 exists to fix.  For it
we assert the honest directional signature rather than pretending the
tolerance holds.
"""

import pytest

from repro.core.config import CoreliteConfig, FeedbackScheme
from repro.experiments.builder import CloudBuilder
from repro.experiments.scenarios import mesh_flows, parking_lot_flows
from repro.experiments.topospec import TopologySpec
from repro.fairness.metrics import weighted_jain_index


def run_cloud(spec, flows, scheme, until, seed=0):
    config = CoreliteConfig(feedback_scheme=scheme)
    builder = CloudBuilder(spec, scheme="corelite", seed=seed, config=config)
    builder.add_flows(flows)
    cloud = builder.build()
    reference = cloud.reference_rates()
    result = cloud.run(until=until)
    rates = result.mean_rates((until / 2.0, until))
    jain = weighted_jain_index(
        [rates[fid] for fid in sorted(reference)],
        [reference[fid] for fid in sorted(reference)],
    )
    return rates, reference, jain


class TestParkingLot:
    def test_selective_meets_reference_within_10_percent(self):
        rates, reference, jain = run_cloud(
            TopologySpec.parking_lot(3),
            parking_lot_flows(),
            FeedbackScheme.SELECTIVE,
            until=120.0,
        )
        for fid, expected in reference.items():
            assert rates[fid] == pytest.approx(expected, rel=0.10), (
                f"flow {fid}: {rates[fid]:.1f} vs reference {expected:.1f}"
            )
        assert jain >= 0.95

    def test_marker_cache_shows_the_multi_hop_bias(self):
        # A flow crossing k congested links hears k links' congestion
        # events, so the cache throttles it ~k times as often: the long
        # flow settles well below its weighted share and the single-hop
        # cross flows absorb the slack.  This is the §3.2 motivation, and
        # exactly what the selective scheme's running-average filter
        # removes.  Aggregate fairness remains decent; per-flow accuracy
        # does not.
        rates, reference, jain = run_cloud(
            TopologySpec.parking_lot(3),
            parking_lot_flows(),
            FeedbackScheme.MARKER_CACHE,
            until=120.0,
        )
        long_dev = (rates[1] - reference[1]) / reference[1]
        assert long_dev < -0.2, f"long flow should undershoot, got {long_dev:+.2f}"
        for fid in range(2, 8):
            cross_dev = (rates[fid] - reference[fid]) / reference[fid]
            assert cross_dev > 0.0, (
                f"cross flow {fid} should absorb the slack, got {cross_dev:+.2f}"
            )
        assert jain >= 0.90


class TestMesh:
    def test_selective_holds_each_flow_at_its_bottleneck_level(self):
        rates, reference, jain = run_cloud(
            TopologySpec.mesh(),
            mesh_flows(),
            FeedbackScheme.SELECTIVE,
            until=240.0,
        )
        # Saw-tooth averaging keeps means a few percent under the peak
        # allocation; 12% bounds the worst observed flow with margin
        # while still separating the 125 and 250 pkt/s levels cleanly.
        for fid, expected in reference.items():
            assert rates[fid] == pytest.approx(expected, rel=0.12), (
                f"flow {fid}: {rates[fid]:.1f} vs reference {expected:.1f}"
            )
        assert jain >= 0.95
        # The heterogeneous levels actually separate: every C-D flow
        # (250 pkt/s level) beats every chord flow (125 pkt/s level).
        assert min(rates[8], rates[9]) > 1.5 * max(rates[10], rates[11], rates[12])

    def test_marker_cache_biased_against_two_hop_flows(self):
        rates, reference, jain = run_cloud(
            TopologySpec.mesh(),
            mesh_flows(),
            FeedbackScheme.MARKER_CACHE,
            until=240.0,
        )
        # Flows 1-2 cross two congested links (A-B and B-D) and undershoot;
        # the single-hop fillers 3-4 on those same links soak up the slack.
        for fid in (1, 2):
            assert (rates[fid] - reference[fid]) / reference[fid] < -0.1
        for fid in (3, 4):
            assert (rates[fid] - reference[fid]) / reference[fid] > 0.2
        assert jain >= 0.90
