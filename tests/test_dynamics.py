"""Topology dynamics: link failure/recovery, rerouting, ECMP spraying.

Covers the unit semantics (NetworkEvent validation and JSON round trip,
Link.fail/recover drop accounting, generation-checked in-flight drops)
and the cloud-level behavior (chain failure partitions and recovery
reconnects, mesh failure reroutes onto the detour, same-timestamp events
execute in declaration order, parked epoch timers are woken before their
link fails, ECMP/flowlet modes spray across equal-cost next hops).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.experiments.builder import CloudBuilder
from repro.experiments.topospec import FlowPathSpec, TopologySpec
from repro.sim.dynamics import NetworkDynamics, NetworkEvent
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Router, _ecmp_index
from repro.sim.packet import Packet
from repro.sim.topology import Topology

from .conftest import CollectorNode


# ---------------------------------------------------------------------------
# NetworkEvent validation and serialization
# ---------------------------------------------------------------------------


def test_event_round_trips_through_dict():
    event = NetworkEvent(time=40.0, kind="link_down", a="A", b="B")
    assert NetworkEvent.from_dict(event.to_dict()) == event


def test_event_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        NetworkEvent(time=1.0, kind="link_flap", a="A", b="B")


def test_event_rejects_negative_and_nan_time():
    with pytest.raises(ConfigurationError):
        NetworkEvent(time=-1.0, kind="link_down", a="A", b="B")
    with pytest.raises(ConfigurationError):
        NetworkEvent(time=float("nan"), kind="link_down", a="A", b="B")


def test_event_rejects_identical_endpoints():
    with pytest.raises(ConfigurationError):
        NetworkEvent(time=1.0, kind="link_down", a="A", b="A")


def test_event_from_dict_rejects_unknown_keys_and_bad_link():
    with pytest.raises(ConfigurationError):
        NetworkEvent.from_dict(
            {"time": 1.0, "kind": "link_down", "link": ["A", "B"], "x": 1}
        )
    with pytest.raises(ConfigurationError):
        NetworkEvent.from_dict({"time": 1.0, "kind": "link_down", "link": "AB"})
    with pytest.raises(ConfigurationError):
        NetworkEvent.from_dict({"time": 1.0, "kind": "link_down"})


def test_event_pair_is_order_free():
    down = NetworkEvent(time=1.0, kind="link_down", a="B", b="A")
    up = NetworkEvent(time=2.0, kind="link_up", a="A", b="B")
    assert down.pair == up.pair == ("A", "B")


def test_spec_rejects_event_on_unknown_link():
    with pytest.raises(TopologyError):
        TopologySpec.chain(
            2, events=(NetworkEvent(time=1.0, kind="link_down", a="C1", b="C9"),)
        )


def test_spec_events_round_trip_through_dict():
    spec = TopologySpec.mesh(
        events=(
            NetworkEvent(time=40.0, kind="link_down", a="A", b="B"),
            NetworkEvent(time=80.0, kind="link_up", a="A", b="B"),
        ),
        routing_mode="ecmp",
        reroute_latency=0.5,
    )
    again = TopologySpec.from_dict(spec.to_dict())
    assert again.events == spec.events
    assert again.routing_mode == "ecmp"
    assert again.reroute_latency == 0.5


def test_dynamics_rejects_event_for_missing_topology_link():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_node(Router("A"))
    topo.add_node(Router("B"))
    topo.add_duplex_link("A", "B", 500.0, 0.010)
    with pytest.raises(TopologyError):
        NetworkDynamics(
            sim, topo, [NetworkEvent(time=1.0, kind="link_down", a="A", b="Z")]
        )


# ---------------------------------------------------------------------------
# Link failure/recovery unit semantics
# ---------------------------------------------------------------------------


def _fill_queue(link, n, now=0.0):
    for seq in range(n):
        link.send(Packet.data(1, "A", "C", seq=seq, now=now))


def test_fail_flushes_queue_as_queue_drops(line_topology):
    topo, a, b, c = line_topology
    link = topo.links["A->B"]
    _fill_queue(link, 5)
    before = link.queue.stats.dropped_data
    flushed = link.fail()
    # One packet is serializing (not in the queue); the rest flush.
    assert flushed == 4
    assert link.queue.stats.dropped_data == before + flushed
    assert link.failure_drops == 0  # flush is booked as queue drops only
    assert not link.up


def test_send_while_down_counts_failure_drops(line_topology):
    topo, a, b, c = line_topology
    link = topo.links["A->B"]
    link.fail()
    assert link.send(Packet.data(1, "A", "C", seq=0, now=0.0)) is False
    assert link.failure_drops == 1
    # Markers vanish without accounting: they carry no payload.
    assert link.send(Packet.marker(1, "A", "C", label=0.0, now=0.0)) is False
    assert link.failure_drops == 1


def test_fail_strands_packets_in_flight(line_topology):
    """A packet already in the propagation pipe is dropped when its
    delivery event fires after the failure."""
    topo, a, b, c = line_topology
    sim = topo.sim
    link = topo.links["B->C"]
    link.enable_dynamics()
    link.send(Packet.data(1, "B", "C", seq=0, now=0.0))
    sim.run(until=0.005)  # serialized (2 ms), now mid-propagation (10 ms)
    link.fail()
    sim.run(until=1.0)
    assert c.packets == []
    assert link.inflight_drops == 1


def test_recovery_before_delivery_still_drops_stranded_packet(line_topology):
    """The generation check is what strands a packet — not the link's up
    flag at delivery time.  Fail then recover before the delivery event
    fires: the packet must still be lost."""
    topo, a, b, c = line_topology
    sim = topo.sim
    link = topo.links["B->C"]
    link.enable_dynamics()
    link.send(Packet.data(1, "B", "C", seq=0, now=0.0))
    sim.run(until=0.005)
    link.fail()
    link.recover()  # instant repair, before the delivery event at ~12 ms
    sim.run(until=1.0)
    assert c.packets == []
    assert link.inflight_drops == 1
    # The recovered link carries fresh traffic normally.
    link.send(Packet.data(1, "B", "C", seq=1, now=sim.now))
    sim.run(until=2.0)
    assert [p.seq for p in c.packets] == [1]


def test_fail_is_idempotent_and_recover_on_up_link_is_noop(line_topology):
    topo, a, b, c = line_topology
    link = topo.links["A->B"]
    link.recover()  # up already: no-op
    assert link.up
    assert link.fail() == 0  # empty queue
    assert link.fail() == 0  # already down
    link.recover()
    assert link.up


def test_rebuild_routes_excludes_failed_link(line_topology):
    topo, a, b, c = line_topology
    topo.links["B->C"].fail()
    topo.links["C->B"].fail()
    topo.rebuild_routes()
    # B has no route to C any more; A has no route to B's far side.
    assert "C" not in a._routes
    assert "C" not in b._routes
    topo.links["B->C"].recover()
    topo.links["C->B"].recover()
    topo.rebuild_routes()
    assert a._routes["C"] is topo.links["A->B"]


def test_router_drop_unrouted_counts_data_only(line_topology):
    topo, a, b, c = line_topology
    a.drop_unrouted = True
    a._routes = {}
    assert a.forward(Packet.data(1, "A", "C", seq=0, now=0.0)) is False
    assert a.forward(Packet.marker(1, "A", "C", label=0.0, now=0.0)) is False
    assert a.unrouted_drops == 1


# ---------------------------------------------------------------------------
# Scheduled dynamics against a live topology
# ---------------------------------------------------------------------------


def _chain_cloud(events, *, scheme="corelite", seed=5, **spec_kwargs):
    spec = TopologySpec.chain(3, events=events, **spec_kwargs)
    builder = CloudBuilder(spec, scheme=scheme, seed=seed)
    builder.add_flow(FlowPathSpec(flow_id=1, weight=1.0, ingress_core="C1", egress_core="C3"))
    builder.add_flow(FlowPathSpec(flow_id=2, weight=2.0, ingress_core="C2", egress_core="C3"))
    return builder.build()


def test_chain_failure_partitions_and_recovery_reconnects():
    cloud = _chain_cloud(
        (
            NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),
            NetworkEvent(time=16.0, kind="link_up", a="C1", b="C2"),
        )
    )
    result = cloud.run(until=30.0)
    record = result.record(1)
    # Delivery stops during the outage and resumes after recovery.
    outage = record.throughput_series.window(10.0, 16.0)
    assert max(outage.values, default=0.0) == 0.0
    recovered = record.throughput_series.window(20.0, 30.0)
    assert min(recovered.values) > 0.0
    assert result.dynamics["reroutes"] == 2
    assert cloud.dynamics.failure_drops() > 0


def test_mesh_failure_reroutes_onto_detour():
    spec = TopologySpec.mesh(
        events=(NetworkEvent(time=10.0, kind="link_down", a="A", b="B"),)
    )
    builder = CloudBuilder(spec, scheme="corelite", seed=3)
    builder.add_flow(FlowPathSpec(flow_id=1, weight=1.0, ingress_core="A", egress_core="B"))
    cloud = builder.build()
    before = cloud.flow_path_links(1)
    assert "A->B" in before
    result = cloud.run(until=40.0)
    after = cloud.flow_path_links(1)
    assert "A->B" not in after and len(after) > len(before)
    # The flow keeps delivering over the detour.
    tail = result.record(1).throughput_series.window(25.0, 40.0)
    assert min(tail.values) > 0.0


def test_same_timestamp_events_execute_in_declaration_order():
    cloud = _chain_cloud(
        (
            NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),
            NetworkEvent(time=8.0, kind="link_down", a="C2", b="C3"),
            NetworkEvent(time=8.0, kind="link_up", a="C1", b="C2"),
        )
    )
    cloud.run(until=12.0)
    applied = [(t, e.kind, e.pair) for t, e in cloud.dynamics.applied]
    assert applied == [
        (8.0, "link_down", ("C1", "C2")),
        (8.0, "link_down", ("C2", "C3")),
        (8.0, "link_up", ("C1", "C2")),
    ]
    # Net state after the tie: C1-C2 back up, C2-C3 still down.
    assert cloud.topology.links["C1->C2"].up
    assert not cloud.topology.links["C2->C3"].up


def test_reroute_latency_delays_table_swap():
    cloud = _chain_cloud(
        (NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),),
        reroute_latency=2.0,
    )
    captured = {}

    def probe():
        if cloud.sim.now not in captured:
            captured[cloud.sim.now] = cloud.dynamics.reroutes

    cloud.sim.schedule_at(9.0, probe)
    cloud.sim.schedule_at(11.0, probe)
    cloud.run(until=12.0)
    assert captured[9.0] == 0  # failed, but tables not yet swapped
    assert captured[11.0] == 1  # reroute fired at t=10


def test_recovery_before_pending_reroute_completes():
    """With a reroute latency, a recovery can land before the failure's
    reroute fires.  Both reroutes still execute (recomputation is
    idempotent) and the final tables route over the recovered link."""
    cloud = _chain_cloud(
        (
            NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),
            NetworkEvent(time=9.0, kind="link_up", a="C1", b="C2"),
        ),
        reroute_latency=3.0,  # failure reroute at t=11, recovery's at t=12
    )
    result = cloud.run(until=24.0)
    assert cloud.dynamics.reroutes == 2
    assert cloud.topology.links["C1->C2"].up
    tail = result.record(1).throughput_series.window(16.0, 24.0)
    assert min(tail.values) > 0.0


def test_failed_link_with_parked_epoch_timer_is_woken_first():
    """PR 5 parks a core's epoch timer when a link goes idle.  Failing
    that link must unpark first — the parking trap must never wrap the
    dead link's send, and a down link must not be parked again."""
    spec = TopologySpec.chain(
        3,
        events=(
            NetworkEvent(time=20.0, kind="link_down", a="C2", b="C3"),
            NetworkEvent(time=28.0, kind="link_up", a="C2", b="C3"),
        ),
    )
    builder = CloudBuilder(spec, scheme="corelite", seed=5)
    # Only an early-stopping flow crosses C2->C3: the link goes idle at
    # t=10 and its feeding core's epoch timer parks before the failure.
    builder.add_flow(
        FlowPathSpec(
            flow_id=1,
            weight=1.0,
            ingress_core="C1",
            egress_core="C3",
            schedule=((0.0, 10.0), (30.0, 40.0)),
        )
    )
    cloud = builder.build()
    result = cloud.run(until=40.0)
    link = cloud.topology.links["C2->C3"]
    assert link.up
    # send must be a live path, not the stale failure trap.
    assert getattr(link.send, "__func__", None) is not Link._send_down
    tail = result.record(1).throughput_series.window(34.0, 40.0)
    assert min(tail.values) > 0.0


def test_csfq_scheme_survives_failure_and_recovery():
    cloud = _chain_cloud(
        (
            NetworkEvent(time=8.0, kind="link_down", a="C1", b="C2"),
            NetworkEvent(time=16.0, kind="link_up", a="C1", b="C2"),
        ),
        scheme="csfq",
    )
    result = cloud.run(until=30.0)
    assert result.dynamics["reroutes"] == 2
    tail = result.record(1).throughput_series.window(22.0, 30.0)
    assert min(tail.values) > 0.0


# ---------------------------------------------------------------------------
# ECMP / flowlet multipath
# ---------------------------------------------------------------------------


def _leaf_spine_cloud(mode, *, flows=8, n_packets=8, seed=3):
    spec = TopologySpec.leaf_spine(
        leaves=2, spines=2, routing_mode=mode, ecmp_flowlet_n_packets=n_packets
    )
    builder = CloudBuilder(spec, scheme="corelite", seed=seed)
    for fid in range(1, flows + 1):
        builder.add_flow(
            FlowPathSpec(flow_id=fid, weight=1.0, ingress_core="L1", egress_core="L2")
        )
    return builder.build()


def _uplink_counts(cloud):
    return {
        name: link.queue.stats.enqueued_data
        for name, link in cloud.topology.links.items()
        if link.src_name == "L1" and link.dst.name.startswith("S")
    }


def test_ecmp_mode_sprays_flows_across_spines():
    cloud = _leaf_spine_cloud("ecmp", flows=32)
    cloud.run(until=10.0)
    counts = _uplink_counts(cloud)
    assert set(counts) == {"L1->S1", "L1->S2"}
    assert all(count > 0 for count in counts.values())


def test_ecmp_pins_each_flow_to_one_path():
    """Without flowlets a flow's packets all take the same next hop."""
    cloud = _leaf_spine_cloud("ecmp", flows=4)
    router = cloud.topology.nodes["L1"]
    for fid in range(1, 5):
        hops = {
            router.route_for_packet(Packet.data(fid, "L1", "Eout%d" % fid, seq=s, now=0.0))
            for s in range(20)
        }
        assert len(hops) == 1


def test_flowlet_mode_moves_one_flow_across_paths():
    cloud = _leaf_spine_cloud("ecmp_flowlet", flows=1, n_packets=4)
    router = cloud.topology.nodes["L1"]
    hops = [
        router.route_for_packet(Packet.data(1, "L1", "Eout1", seq=s, now=0.0))
        for s in range(64)
    ]
    assert len(set(hops)) == 2
    # The hop changes only on flowlet boundaries: runs of 4.
    for start in range(0, 64, 4):
        assert len(set(hops[start : start + 4])) == 1


def test_markers_do_not_advance_flowlet_counter():
    cloud = _leaf_spine_cloud("ecmp_flowlet", flows=1, n_packets=4)
    router = cloud.topology.nodes["L1"]
    first = router.route_for_packet(Packet.data(1, "L1", "Eout1", seq=0, now=0.0))
    for _ in range(16):
        router.route_for_packet(Packet.marker(1, "L1", "Eout1", label=0.0, now=0.0))
    # 16 markers later the flow is still inside its first 4-packet flowlet.
    assert router.route_for_packet(Packet.data(1, "L1", "Eout1", seq=1, now=0.0)) is first


def test_ecmp_index_is_deterministic_and_in_range():
    for n in (1, 2, 3, 5):
        for flow in range(1, 50):
            idx = _ecmp_index(flow, 7, 0x12345, n)
            assert 0 <= idx < n
            assert idx == _ecmp_index(flow, 7, 0x12345, n)


def test_ecmp_run_is_seed_reproducible():
    def run_once():
        cloud = _leaf_spine_cloud("ecmp_flowlet", flows=6, seed=11)
        result = cloud.run(until=10.0)
        return (
            tuple(
                (fid, rec.delivered) for fid, rec in sorted(result.flows.items())
            ),
            tuple(sorted(_uplink_counts(cloud).items())),
        )

    assert run_once() == run_once()
