"""Conservative-PDES tests: partitioner, windowed engine, equivalence.

The core claim of :mod:`repro.experiments.pdes` is that a partitioned
run is not an approximation: with every RNG stream name-derived, routing
and control delays resolved over the global shadow graph, and boundary
links reproducing the queued-path transmission timestamps, a two-way
partitioned chain must match the serial run *exactly* — same delivered
counts, same drops, bit-equal rate/throughput series.  Mesh and
parking-lot workloads at four partitions are additionally pinned
statistically (weighted Jain and 2% per-flow mean rates against serial),
the tolerance the scheme-level acceptance uses.
"""

import math

import pytest

from repro.errors import ConfigurationError, SimulationError, TopologyError
from repro.experiments.builder import CloudBuilder
from repro.experiments.partition import (
    PartitionPlan,
    ShadowGraph,
    auto_partition,
    channel_delay_matrix,
    lookahead_closure,
)
from repro.experiments.pdes import ParallelCloud
from repro.experiments.scenarios import mesh_flows, parking_lot_flows
from repro.experiments.topospec import FlowPathSpec, SourceSpec, TopologySpec
from repro.sim.engine import Simulator
from repro.units import ms_to_s


def chain_flows():
    return [
        FlowPathSpec(1, weight=2.0, ingress_core="C1", egress_core="C4"),
        FlowPathSpec(2, weight=1.0, ingress_core="C1", egress_core="C2"),
        FlowPathSpec(3, weight=3.0, ingress_core="C3", egress_core="C4"),
        FlowPathSpec(4, weight=1.0, ingress_core="C2", egress_core="C3"),
        FlowPathSpec(5, weight=1.0, ingress_core="C4", egress_core="C1"),
    ]


def rich_flows():
    """Sources, schedules, contracts, aggregates and micro-flows in one
    scenario — every generator path the scheduler knows."""
    return [
        FlowPathSpec(
            1,
            weight=2.0,
            ingress_core="C1",
            egress_core="C4",
            source=SourceSpec(kind="poisson", mean_rate=120.0),
        ),
        FlowPathSpec(2, weight=1.0, ingress_core="C1", egress_core="C4", min_rate=20.0),
        FlowPathSpec(
            3,
            weight=1.0,
            ingress_core="C2",
            egress_core="C4",
            aggregate=3,
            source=SourceSpec(kind="poisson", mean_rate=40.0),
        ),
        FlowPathSpec(
            4,
            weight=1.0,
            ingress_core="C3",
            egress_core="C1",
            micro_flows=(
                (1, SourceSpec(kind="poisson", mean_rate=30.0)),
                (2, SourceSpec(kind="poisson", mean_rate=50.0)),
            ),
        ),
        FlowPathSpec(
            5, weight=1.0, ingress_core="C2", egress_core="C3", schedule=((5.0, 20.0),)
        ),
    ]


def run_pair(
    spec,
    flows,
    scheme,
    until,
    *,
    partitions=2,
    mode="inline",
    plan=None,
    adaptive=True,
    record_queues=False,
    **kw,
):
    def builder():
        b = CloudBuilder(spec, scheme=scheme, seed=7, **kw)
        b.add_flows(flows)
        return b

    serial = builder().run(until=until, record_queues=record_queues)
    b = builder()
    b.partitions = partitions
    b.partition_plan = plan
    b.pdes_mode = mode
    b.pdes_adaptive = adaptive
    parallel = b.run(until=until, record_queues=record_queues)
    return serial, parallel


def assert_identical(serial, parallel):
    """Field-for-field equality of two RunResults (exact, not statistical)."""
    assert set(serial.flows) == set(parallel.flows)
    for fid, a in serial.flows.items():
        b = parallel.flows[fid]
        assert a.delivered == b.delivered, fid
        assert a.losses == b.losses, fid
        assert a.weight == b.weight
        assert a.path_links == b.path_links
        assert a.delay == b.delay
        assert a.micro_delivered == b.micro_delivered
        assert list(a.rate_series) == list(b.rate_series), fid
        assert list(a.throughput_series) == list(b.throughput_series), fid
        assert list(a.cumulative_series) == list(b.cumulative_series), fid
    assert serial.total_drops == parallel.total_drops
    assert serial.capacities == parallel.capacities
    assert serial.scheme == parallel.scheme
    assert serial.seed == parallel.seed


# -- partitioner ---------------------------------------------------------------


class TestPartitionPlan:
    def test_auto_partition_chain_splits_in_the_middle(self):
        spec = TopologySpec.chain(4)
        plan = auto_partition(spec, 2)
        assert plan.cores_of(0) == ("C1", "C2")
        assert plan.cores_of(1) == ("C3", "C4")
        assert plan.window(spec) == pytest.approx(ms_to_s(40.0))

    def test_auto_partition_cuts_the_longest_delay_links(self):
        # Two tight pairs joined by a slow link: the min-cut over delay
        # must leave the slow link crossing, maximizing the window.
        spec = TopologySpec.mesh()
        plan = auto_partition(spec, 2)
        assert {len(plan.cores_of(0)), len(plan.cores_of(1))} == {2}
        cut = plan.cut_links(spec)
        assert cut
        assert plan.window(spec) == min(link.prop_delay for link in cut)

    def test_single_partition_has_no_cut(self):
        spec = TopologySpec.chain(3)
        plan = auto_partition(spec, 1)
        assert plan.cut_links(spec) == ()
        assert plan.window(spec) == math.inf

    def test_too_many_partitions_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot split"):
            auto_partition(TopologySpec.chain(2), 3)

    def test_mapping_round_trip(self):
        plan = PartitionPlan.from_mapping({"C1": 0, "C2": 0, "C3": 1, "C4": 1})
        restored = PartitionPlan.from_dict(plan.to_dict())
        assert restored == plan
        assert restored.partition_of("C3") == 1

    def test_mapping_validation(self):
        with pytest.raises(ConfigurationError, match="empty"):
            PartitionPlan.from_mapping({})
        with pytest.raises(ConfigurationError, match="twice"):
            PartitionPlan((("C1", 0), ("C1", 0)), 1)
        with pytest.raises(ConfigurationError, match="outside"):
            PartitionPlan((("C1", 0), ("C2", 5)), 2)
        with pytest.raises(ConfigurationError, match="empty"):
            PartitionPlan((("C1", 0), ("C2", 0)), 2)
        with pytest.raises(ConfigurationError, match="declares"):
            PartitionPlan.from_dict(
                {"num_partitions": 3, "assignments": {"C1": 0, "C2": 1}}
            )

    def test_validate_for_checks_core_cover(self):
        spec = TopologySpec.chain(3)
        plan = PartitionPlan.from_mapping({"C1": 0, "C2": 1})
        with pytest.raises(ConfigurationError, match="does not match topology"):
            plan.validate_for(spec)

    def test_zero_delay_cut_is_rejected(self):
        spec = TopologySpec.chain(2, prop_delay=0.0)
        plan = PartitionPlan.from_mapping({"C1": 0, "C2": 1})
        with pytest.raises(ConfigurationError, match="zero-delay"):
            plan.window(spec)

    def test_spec_partition_plan_manual_override(self):
        spec = TopologySpec.chain(4)
        plan = spec.partition_plan(2, assignments={"C1": 0, "C2": 1, "C3": 1, "C4": 0})
        assert plan.partition_of("C4") == 0
        with pytest.raises(TopologyError):
            spec.partition_plan(3, assignments={"C1": 0, "C2": 1, "C3": 1, "C4": 0})

    def test_shadow_graph_matches_serial_paths(self):
        spec = TopologySpec.chain(4)
        flows = chain_flows()
        shadow = ShadowGraph(spec, flows)
        builder = CloudBuilder(spec, scheme="corelite", seed=0)
        builder.add_flows(flows)
        cloud = builder.build()
        for flow in flows:
            assert shadow.path_link_names(
                flow.ingress_edge, flow.egress_edge
            ) == cloud.flow_path_links(flow.flow_id)
            assert shadow.path_delay(
                flow.ingress_edge, flow.egress_edge
            ) == cloud.topology.path_delay(flow.ingress_edge, flow.egress_edge)
        assert shadow.capacities == cloud.link_capacities()


# -- windowed engine -----------------------------------------------------------


class TestWindowedEngine:
    def test_run_window_advances_clock_to_barrier(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(0.5, fired.append, 1)
        sim.schedule_at(1.5, fired.append, 2)
        sim.run_window(1.0)
        assert fired == [1]
        assert sim.now == 1.0
        sim.run_window(2.0)
        assert fired == [1, 2]

    def test_run_window_into_the_past_raises(self):
        sim = Simulator()
        sim.run_window(1.0)
        with pytest.raises(SimulationError, match="past"):
            sim.run_window(0.5)

    def test_inject_into_the_past_raises(self):
        sim = Simulator()
        sim.run_window(1.0)
        with pytest.raises(SimulationError, match="past"):
            sim.inject(0.5, lambda: None)

    def test_inject_from_inside_run_raises(self):
        sim = Simulator()

        def evil():
            sim.inject(2.0, lambda: None)

        sim.schedule_at(0.5, evil)
        with pytest.raises(SimulationError, match="between windows"):
            sim.run(until=1.0)

    def test_injected_events_dispatch_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.run_window(1.0)
        sim.inject(1.5, fired.append, "b")
        sim.inject(1.25, fired.append, "a")
        sim.schedule_at(1.75, fired.append, "c")
        sim.run_window(2.0)
        assert fired == ["a", "b", "c"]


# -- serial equivalence --------------------------------------------------------


class TestTwoPartitionChainEquivalence:
    """The tentpole pin: a two-way chain split is *exactly* the serial run."""

    @pytest.mark.parametrize("scheme", ["corelite", "csfq", "fifo"])
    def test_backlogged_chain_matches_serial_exactly(self, scheme):
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), scheme, 30.0
        )
        assert_identical(serial, parallel)
        assert serial.total_delivered() > 0

    def test_rich_corelite_scenario_matches_serial_exactly(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4), rich_flows(), "corelite", 30.0
        )
        assert_identical(serial, parallel)
        # The aggregate and micro-flow buckets keep per-member accounting.
        assert parallel.flows[3].micro_delivered
        assert parallel.flows[4].micro_delivered

    def test_manual_plan_override_matches_serial_exactly(self):
        spec = TopologySpec.chain(4)
        plan = spec.partition_plan(2, assignments={"C1": 0, "C2": 0, "C3": 0, "C4": 1})
        serial, parallel = run_pair(
            spec, chain_flows(), "corelite", 30.0, plan=plan
        )
        assert_identical(serial, parallel)

    def test_byte_identical_toggles_still_match(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4),
            chain_flows(),
            "corelite",
            20.0,
            packet_pool=True,
            calendar=False,
        )
        assert_identical(serial, parallel)

    def test_process_mode_matches_serial_exactly(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 20.0, mode="process"
        )
        assert_identical(serial, parallel)

    def test_csfq_loss_notifications_cross_the_cut(self):
        # Unresponsive overload: egress loss notifications must travel
        # back across the partition boundary to throttle the sources.
        spec = TopologySpec.chain(4, queue_capacity=20.0)
        flows = [
            FlowPathSpec(
                fid,
                weight=1.0,
                ingress_core="C1",
                egress_core="C4",
                source=SourceSpec(kind="poisson", mean_rate=400.0),
            )
            for fid in (1, 2)
        ]
        serial, parallel = run_pair(spec, flows, "csfq", 30.0)
        assert_identical(serial, parallel)
        assert serial.total_losses() > 0


class TestFourPartitionStatisticalPins:
    """Mesh and parking-lot at one core per partition: the acceptance
    pins are statistical (Jain + 2% mean rates), though the runs are in
    fact exact — asserted on top as a regression canary."""

    def assert_pinned(self, serial, parallel, window):
        serial_rates = serial.mean_rates(window)
        parallel_rates = parallel.mean_rates(window)
        for fid, expect in serial_rates.items():
            got = parallel_rates[fid]
            assert got == pytest.approx(expect, rel=0.02), fid
        assert parallel.fairness_at(window) == pytest.approx(
            serial.fairness_at(window), abs=0.01
        )

    def test_mesh_workload_four_partitions(self):
        spec = TopologySpec.mesh()
        serial, parallel = run_pair(
            spec, mesh_flows(), "corelite", 40.0, partitions=4
        )
        self.assert_pinned(serial, parallel, (20.0, 40.0))
        assert_identical(serial, parallel)

    def test_parking_lot_workload_four_partitions(self):
        spec = TopologySpec.parking_lot(hops=3)
        serial, parallel = run_pair(
            spec, parking_lot_flows(hops=3), "corelite", 40.0, partitions=4
        )
        self.assert_pinned(serial, parallel, (20.0, 40.0))
        assert_identical(serial, parallel)


# -- adaptive lookahead --------------------------------------------------------


class TestLookaheadClosure:
    def test_channel_delay_matrix_keeps_the_minimum(self):
        matrix = channel_delay_matrix(
            2, [(0, 1, 0.04), (0, 1, 0.2), (1, 0, 0.08), (0, 0, 0.01)]
        )
        assert matrix[0][1] == pytest.approx(0.04)
        assert matrix[1][0] == pytest.approx(0.08)
        # Same-partition channels never constrain the barrier.
        assert matrix[0][0] == math.inf

    def test_channel_delay_matrix_rejects_zero_delay(self):
        with pytest.raises(ConfigurationError, match="non-positive"):
            channel_delay_matrix(2, [(0, 1, 0.0)])

    def test_closure_tightens_via_relay_and_keeps_cycles(self):
        # 0->1 direct is slow (1.0) but via 2 costs 0.1+0.1; the diagonal
        # is the min cycle weight, not zero (>=1-hop walks only).
        matrix = channel_delay_matrix(
            3, [(0, 1, 1.0), (0, 2, 0.1), (2, 1, 0.1), (1, 0, 0.3)]
        )
        closed = lookahead_closure(matrix)
        assert closed[0][1] == pytest.approx(0.2)
        assert closed[0][0] == pytest.approx(0.5)  # 0->2->1->0
        assert closed[2][2] == pytest.approx(0.5)  # 2->1->0->2
        assert closed[1][1] == pytest.approx(0.5)  # 1->0->2->1

    def test_closure_never_undercuts_the_static_window(self):
        # Every adaptive bound is a >=1-hop walk over channels, each of
        # which crosses at least one cut link, so no entry of the
        # closure can be below the plan's static window.
        spec = TopologySpec.chain(4)
        cloud = ParallelCloud(
            spec, "corelite", chain_flows(), partitions=2, mode="inline"
        )
        closed = cloud._lookahead
        assert min(min(row) for row in closed) >= cloud.window


class TestAdaptiveWindows:
    """The PR-10 tentpole: dynamic barriers stay byte-identical and cut
    the barrier count by well over the acceptance floor of 3x."""

    def test_static_mode_still_matches_serial_exactly(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 20.0,
            adaptive=False,
        )
        assert_identical(serial, parallel)

    def test_adaptive_four_partition_chain_matches_serial_exactly(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 30.0,
            partitions=4,
        )
        assert_identical(serial, parallel)

    def test_adaptive_process_mode_matches_serial_exactly(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 20.0,
            mode="process",
        )
        assert_identical(serial, parallel)

    @staticmethod
    def _scaled_run(adaptive):
        from repro.perf import _pdes_scaling_builder

        builder = _pdes_scaling_builder(64, 2)
        builder.pdes_mode = "inline"
        builder.pdes_adaptive = adaptive
        parallel = builder.build_parallel()
        session = parallel.start()
        try:
            result = parallel.execute(session, 16.0, sample_interval=1.0)
        finally:
            session.close()
        return parallel, result

    def test_barrier_count_drops_at_least_3x_on_the_chain_rung(self):
        static, static_result = self._scaled_run(False)
        adaptive, adaptive_result = self._scaled_run(True)
        assert static.barriers >= 3 * adaptive.barriers
        # Same workload, same answer: the windows only chunk execution.
        for fid, record in static_result.flows.items():
            other = adaptive_result.flows[fid]
            assert record.delivered == other.delivered, fid
            assert list(record.rate_series) == list(other.rate_series), fid

    def test_trains_cross_cut_links_whole(self):
        # PR-9 composition: with a plain-FIFO cut the train carrier must
        # survive the boundary intact, and the run stays byte-identical
        # (the wire format round-trips count/markers/micro ids/lags).
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 20.0,
            train_batch=8,
        )
        assert_identical(serial, parallel)
        assert serial.total_delivered() > 0

    def test_trains_cross_cut_links_in_process_mode(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 15.0,
            mode="process", train_batch=8,
        )
        assert_identical(serial, parallel)

    def test_idle_partitions_skip_round_trips(self):
        # Flows quiesce after 1s; FIFO partitions then hold no periodic
        # control timers, so the coordinator's cached promises let it
        # bump clocks without touching the workers.
        def builder():
            b = CloudBuilder(TopologySpec.chain(4), scheme="fifo", seed=3)
            b.add_flows(
                [
                    FlowPathSpec(
                        1, ingress_core="C1", egress_core="C4",
                        schedule=((0.0, 1.0),),
                    ),
                    FlowPathSpec(
                        2, ingress_core="C4", egress_core="C1",
                        schedule=((0.0, 1.0),),
                    ),
                ]
            )
            return b

        serial = builder().run(until=8.0, sample_interval=10.0)
        b = builder()
        b.partitions = 2
        b.pdes_mode = "inline"
        parallel_cloud = b.build_parallel()
        session = parallel_cloud.start()
        try:
            parallel = parallel_cloud.execute(session, 8.0, sample_interval=10.0)
        finally:
            session.close()
        assert parallel_cloud.skips > 0
        assert_identical(serial, parallel)

    def test_record_queues_in_process_mode_matches_serial(self):
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 15.0,
            mode="process", record_queues=True,
        )
        for name, series in serial.queue_series.items():
            assert list(series) == list(parallel.queue_series[name]), name


# -- v1 restrictions and API guards --------------------------------------------


class TestRestrictions:
    def make(self, **kw):
        return ParallelCloud(
            TopologySpec.chain(4),
            "corelite",
            chain_flows(),
            partitions=2,
            mode="inline",
            **kw,
        )

    def test_build_rejects_multiple_partitions(self):
        builder = CloudBuilder(TopologySpec.chain(4), partitions=2)
        with pytest.raises(ConfigurationError, match="build_parallel"):
            builder.build()

    def test_builder_validates_partition_kwargs(self):
        with pytest.raises(ConfigurationError, match="partitions"):
            CloudBuilder(TopologySpec.chain(4), partitions=0)
        with pytest.raises(ConfigurationError, match="pdes_mode"):
            CloudBuilder(TopologySpec.chain(4), pdes_mode="thread")

    def test_record_queues_matches_serial_exactly(self):
        # Formerly a v1 rejection: per-partition queue sampling now runs
        # at the serial instants and the merge reassembles the full map.
        serial, parallel = run_pair(
            TopologySpec.chain(4), chain_flows(), "corelite", 20.0,
            record_queues=True,
        )
        assert set(serial.queue_series) == set(parallel.queue_series)
        assert serial.queue_series  # the chain has core-core links
        for name, series in serial.queue_series.items():
            assert list(series) == list(parallel.queue_series[name]), name

    def test_dynamics_events_rejected(self):
        from repro.sim.dynamics import NetworkEvent

        spec = TopologySpec.chain(
            4, events=(NetworkEvent(5.0, "link_down", "C2", "C3"),)
        )
        with pytest.raises(ConfigurationError, match="dynamics"):
            ParallelCloud(spec, "corelite", chain_flows(), partitions=2)

    def test_tcp_flows_rejected(self):
        flows = [
            FlowPathSpec(1, ingress_core="C1", egress_core="C4", transport="tcp")
        ]
        with pytest.raises(ConfigurationError, match="TCP"):
            ParallelCloud(TopologySpec.chain(4), "corelite", flows, partitions=2)

    def test_control_loss_rejected(self):
        with pytest.raises(ConfigurationError, match="control_loss_prob"):
            self.make(control_loss_prob=0.1)

    def test_queue_factory_needs_inline_mode(self):
        from repro.sim.queues import DropTailQueue

        with pytest.raises(ConfigurationError, match="inline"):
            ParallelCloud(
                TopologySpec.chain(4),
                "corelite",
                chain_flows(),
                partitions=2,
                mode="process",
                queue_factory=lambda: DropTailQueue(capacity=40),
            )

    def test_empty_flows_rejected(self):
        with pytest.raises(ConfigurationError, match="no flows"):
            ParallelCloud(TopologySpec.chain(4), "corelite", [], partitions=2)

    def test_duplicate_flow_ids_rejected(self):
        flows = [
            FlowPathSpec(1, ingress_core="C1", egress_core="C4"),
            FlowPathSpec(1, ingress_core="C2", egress_core="C3"),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            ParallelCloud(TopologySpec.chain(4), "corelite", flows, partitions=2)

    def test_plan_partition_count_must_match(self):
        plan = PartitionPlan.from_mapping({"C1": 0, "C2": 0, "C3": 1, "C4": 1})
        with pytest.raises(ConfigurationError, match="asked for"):
            ParallelCloud(
                TopologySpec.chain(4),
                "corelite",
                chain_flows(),
                partitions=3,
                plan=plan,
            )

    def test_admission_rejection_matches_serial_message(self):
        flows = [
            FlowPathSpec(
                1, ingress_core="C1", egress_core="C4", min_rate=10_000.0
            )
        ]
        with pytest.raises(ConfigurationError, match="rejected by admission") as serial:
            b = CloudBuilder(TopologySpec.chain(4), scheme="corelite")
            b.add_flows(flows)
            b.run(until=5.0)
        with pytest.raises(ConfigurationError, match="rejected by admission") as par:
            ParallelCloud(
                TopologySpec.chain(4),
                "corelite",
                flows,
                partitions=2,
                mode="inline",
            ).run(until=5.0)
        assert str(par.value) == str(serial.value)
