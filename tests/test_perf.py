"""Tests for the perf harness: bench runner, report round trip, diff gate,
and the ``corelite bench`` CLI subcommand."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    BENCHES,
    BenchRegression,
    BenchReport,
    BenchResult,
    SCHEMA,
    diff_reports,
    format_diff_table,
    format_report_table,
    load_report,
    run_bench,
    run_suite,
)


TINY = 0.02  # shrink every bench far below its default size


def test_run_bench_returns_timed_result():
    result = run_bench("event_loop", scale=TINY, repeats=2)
    assert result.name == "event_loop"
    assert result.unit == "events"
    assert result.units > 0
    assert result.median_s > 0.0
    assert result.best_s <= result.median_s
    assert result.rate > 0.0


def test_run_bench_unknown_name_and_bad_params():
    with pytest.raises(ConfigurationError):
        run_bench("no_such_bench")
    with pytest.raises(ConfigurationError):
        run_bench("event_loop", repeats=0)
    with pytest.raises(ConfigurationError):
        run_bench("event_loop", scale=0.0)


def test_every_registered_bench_runs_at_tiny_scale():
    from repro.perf import BENCH_REPEAT_CAPS, QUICK_SKIP_BENCHES

    # The repeat-capped rungs (scalar 4096, the 16384 clouds) spend
    # minutes building their topologies; the quick-suite round-trip test
    # below covers the 16384 smoke rung, and the scalar 4096 ones share
    # every code path with the 1024 rungs exercised here.
    heavy = set(BENCH_REPEAT_CAPS) | set(QUICK_SKIP_BENCHES)
    for name in BENCHES:
        if name in heavy:
            continue
        result = run_bench(name, scale=TINY, repeats=1)
        assert result.units > 0, name


def test_scenario_bench_pool_mode_runs():
    result = run_bench("scenario_chain4", scale=TINY, repeats=1, pool=True)
    assert result.unit == "events"
    assert result.units > 0


def test_report_round_trip(tmp_path):
    report = run_suite("unit", quick=True, repeats=1)
    path = tmp_path / "BENCH_unit.json"
    report.write(str(path))
    payload = load_report(str(path))
    assert payload["schema"] == SCHEMA
    assert payload["label"] == "unit"
    assert payload["quick"] is True
    assert payload["peak_rss_kb"] > 0
    assert payload["events_per_sec"] > 0
    assert set(payload["benches"]) == set(BENCHES) - set(payload["skipped"])
    for entry in payload["benches"].values():
        assert entry["units_per_sec"] > 0
    # The table renderers must accept the same report without blowing up.
    assert "units/sec" in format_report_table(report)


def test_load_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"schema": 999, "benches": {}}))
    with pytest.raises(ConfigurationError):
        load_report(str(path))


def _payload(rates):
    return {
        "schema": SCHEMA,
        "benches": {
            name: {"unit": "events", "units_per_sec": rate}
            for name, rate in rates.items()
        },
    }


def test_diff_reports_flags_regressions_and_improvements():
    baseline = _payload({"a": 100.0, "b": 100.0, "c": 100.0, "only_base": 50.0})
    current = _payload({"a": 60.0, "b": 150.0, "c": 95.0, "only_cur": 50.0})
    regressions, improvements = diff_reports(current, baseline, threshold=0.30)
    assert [r.name for r in regressions] == ["a"]
    assert regressions[0].ratio == pytest.approx(0.6)
    assert [r.name for r in improvements] == ["b"]
    # One-sided benches are ignored; mild slowdowns below threshold too.
    table = format_diff_table(regressions, improvements)
    assert "REGRESSION" in table and "+50.0%" in table


def test_diff_reports_warns_on_pdes_core_count_mismatch():
    rates = {"flow_scaling_corelite_1024_pdes_w2_adaptive": 100.0}
    baseline = _payload(rates)
    current = _payload(rates)
    baseline["cpu_count"] = 8
    current["cpu_count"] = 1
    messages = []
    diff_reports(current, baseline, warn=messages.append)
    assert any("core counts" in message for message in messages)
    # Same cores (or non-pdes rungs only): no warning.
    messages.clear()
    diff_reports(baseline, baseline, warn=messages.append)
    assert not messages
    plain_base = _payload({"event_loop": 100.0})
    plain_base["cpu_count"] = 8
    plain_cur = _payload({"event_loop": 100.0})
    plain_cur["cpu_count"] = 1
    messages.clear()
    diff_reports(plain_cur, plain_base, warn=messages.append)
    assert not messages


def test_report_records_core_counts():
    from repro.perf import BenchReport

    report = BenchReport(
        label="x", quick=True, benches={}, wall_seconds=0.0,
        peak_rss_kb=1, events_per_sec=0.0,
    )
    payload = report.as_dict()
    assert payload["cpu_count"] == os.cpu_count()
    if hasattr(os, "sched_getaffinity"):
        assert payload["cpu_affinity"] == len(os.sched_getaffinity(0))


def test_diff_reports_validates_threshold():
    with pytest.raises(ConfigurationError):
        diff_reports(_payload({}), _payload({}), threshold=0.0)
    with pytest.raises(ConfigurationError):
        diff_reports(_payload({}), _payload({}), threshold=1.5)


def test_bench_regression_ratio_guards_zero_baseline():
    entry = BenchRegression("x", "events", baseline_rate=0.0, current_rate=10.0)
    assert entry.ratio == float("inf")


def test_bench_result_rate_guards_zero_median():
    result = BenchResult("x", "events", units=10, median_s=0.0, best_s=0.0, repeats=1)
    assert result.rate == float("inf")


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


def _run_cli(argv):
    from repro.cli import main

    return main(argv)


def test_cli_bench_writes_report_and_gates(tmp_path, capsys):
    out_dir = tmp_path / "results"
    _run_cli(
        [
            "bench",
            "--quick",
            "--repeats",
            "1",
            "--label",
            "t1",
            "--out-dir",
            str(out_dir),
        ]
    )
    report_path = out_dir / "BENCH_t1.json"
    assert report_path.exists()
    payload = load_report(str(report_path))

    # A second run diffed against the first must pass the gate (same box,
    # same code) and print a comparison.
    _run_cli(
        [
            "bench",
            "--quick",
            "--repeats",
            "1",
            "--label",
            "t2",
            "--out-dir",
            str(out_dir),
            "--baseline",
            str(report_path),
            "--threshold",
            "0.9",
        ]
    )
    captured = capsys.readouterr()
    assert "BENCH_t2.json" in captured.out
    assert "vs" in captured.out

    # Against an impossibly fast fabricated baseline the gate must trip.
    fast = dict(payload)
    fast["benches"] = {
        name: {**entry, "units_per_sec": entry["units_per_sec"] * 1e6}
        for name, entry in payload["benches"].items()
    }
    fake = tmp_path / "BENCH_fake.json"
    fake.write_text(json.dumps(fast))
    with pytest.raises(SystemExit):
        _run_cli(
            [
                "bench",
                "--quick",
                "--repeats",
                "1",
                "--label",
                "t3",
                "--out-dir",
                str(out_dir),
                "--baseline",
                str(fake),
            ]
        )


def test_cli_bench_diff_mode_compares_existing_reports(tmp_path, capsys):
    current = dict(_payload({"a": 150.0, "b": 40.0}), label="cur", quick=False)
    baseline = dict(_payload({"a": 100.0, "b": 100.0}), label="base", quick=False)
    current["cpu_count"] = 1
    baseline["cpu_count"] = 8
    cur_path = tmp_path / "BENCH_cur.json"
    base_path = tmp_path / "BENCH_base.json"
    cur_path.write_text(json.dumps(current))
    base_path.write_text(json.dumps(baseline))
    # Offline diff: no suite run, prints the table, never gates.
    _run_cli(["bench", "--diff", str(cur_path), str(base_path)])
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out and "+50.0%" in captured.out
    assert "== corelite bench" not in captured.out  # suite did not run
    # No pdes rungs in these payloads, so differing cpu_counts are quiet.
    assert "core counts" not in captured.out


def test_cli_bench_profile_writes_dump(tmp_path):
    out_dir = tmp_path / "results"
    profile = tmp_path / "bench.prof"
    _run_cli(
        [
            "bench",
            "--quick",
            "--repeats",
            "1",
            "--label",
            "prof",
            "--out-dir",
            str(out_dir),
            "--profile",
            str(profile),
        ]
    )
    assert profile.exists() and profile.stat().st_size > 0
    import pstats

    stats = pstats.Stats(str(profile))
    assert stats.total_calls > 0
