"""Unit + integration tests for micro-flow aggregation."""

import pytest

from repro.core.microflows import MicroFlowMux
from repro.errors import ConfigurationError, FlowError
from repro.experiments.network import CoreliteNetwork, CsfqNetwork, FlowSpec
from repro.sim.sources import poisson_source


class TestMux:
    def test_round_robin_over_backlogged(self):
        mux = MicroFlowMux((1, 2, 3))
        for mid in (1, 2, 3):
            mux.deposit(mid, 2)
        order = [mux.pop() for _ in range(6)]
        assert order == [1, 2, 3, 1, 2, 3]

    def test_idle_micros_are_skipped(self):
        mux = MicroFlowMux((1, 2, 3))
        mux.deposit(2, 2)
        assert mux.pop() == 2
        assert mux.pop() == 2
        assert mux.pop() is None

    def test_total_backlog(self):
        mux = MicroFlowMux((1, 2))
        mux.deposit(1, 3)
        mux.deposit(2, 1)
        assert mux.total_backlog == 4
        mux.pop()
        assert mux.total_backlog == 3

    def test_counters(self):
        mux = MicroFlowMux((1, 2))
        mux.deposit(1, 2)
        mux.pop()
        assert mux.offered == {1: 2, 2: 0}
        assert mux.sent == {1: 1, 2: 0}

    def test_unknown_micro_rejected(self):
        mux = MicroFlowMux((1,))
        with pytest.raises(FlowError):
            mux.deposit(9)
        with pytest.raises(FlowError):
            mux.backlog(9)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            MicroFlowMux(())
        with pytest.raises(ConfigurationError):
            MicroFlowMux((1, 1))
        with pytest.raises(ConfigurationError):
            MicroFlowMux((0,))


class TestFlowSpecValidation:
    def test_micro_flows_exclusive_with_source(self):
        with pytest.raises(FlowError):
            FlowSpec(
                flow_id=1,
                source=poisson_source(10.0),
                micro_flows=((1, poisson_source(10.0)),),
            )

    def test_micro_sources_must_be_finite(self):
        from repro.sim.sources import BACKLOGGED

        with pytest.raises(FlowError):
            FlowSpec(flow_id=1, micro_flows=((1, BACKLOGGED),))

    def test_duplicate_micro_ids(self):
        with pytest.raises(FlowError):
            FlowSpec(
                flow_id=1,
                micro_flows=(
                    (1, poisson_source(10.0)),
                    (1, poisson_source(10.0)),
                ),
            )

    def test_aggregate_is_not_backlogged(self):
        spec = FlowSpec(flow_id=1, micro_flows=((1, poisson_source(10.0)),))
        assert not spec.backlogged


class TestEndToEnd:
    def test_aggregate_shares_equally_among_microflows(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(
            flow_id=1, weight=2.0,
            micro_flows=tuple((m, poisson_source(200.0)) for m in (1, 2, 3)),
        ))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0))
        res = net.run(until=120.0)
        micro = res.flows[1].micro_delivered
        assert set(micro) == {1, 2, 3}
        lo, hi = min(micro.values()), max(micro.values())
        assert hi <= lo * 1.05  # equal split within 5%

    def test_aggregate_gets_weighted_share_as_one_flow(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(
            flow_id=1, weight=2.0,
            micro_flows=tuple((m, poisson_source(300.0)) for m in (1, 2)),
        ))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0))
        res = net.run(until=150.0)
        rates = res.mean_rates((110.0, 150.0))
        assert rates[1] / rates[2] == pytest.approx(2.0, rel=0.2)

    def test_idle_micro_donates_bandwidth_within_aggregate(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(
            flow_id=1, weight=1.0,
            micro_flows=((1, poisson_source(400.0)), (2, poisson_source(20.0))),
        ))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0))
        res = net.run(until=120.0)
        micro = res.flows[1].micro_delivered
        # micro 2 is demand-limited (~20 pkt/s); micro 1 takes the rest.
        assert micro[2] == pytest.approx(20.0 * 120.0, rel=0.2)
        assert micro[1] > 3 * micro[2]

    def test_csfq_rejects_aggregation(self):
        net = CsfqNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(
            flow_id=1, micro_flows=((1, poisson_source(10.0)),),
        ))
        with pytest.raises(ConfigurationError):
            net.run(until=1.0)

    def test_deposit_through_edge_rejected_when_aggregated(self):
        net = CoreliteNetwork.single_bottleneck(seed=0)
        net.add_flow(FlowSpec(
            flow_id=1, micro_flows=((1, poisson_source(10.0)),),
        ))
        net.add_flow(FlowSpec(flow_id=2))
        net.finalize()
        edge = net.edges["Ein1"]
        net.sim.schedule_at(0.0, edge.start_flow, 1)
        mux = net._attach_aggregate(edge, net.flows[1])
        with pytest.raises(FlowError):
            edge.deposit(1, 1)
