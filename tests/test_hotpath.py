"""Tests for the hot-path overhaul: fast-path scheduling, handle reuse,
bounded-run heap hygiene, the rebindable link datapath, and the opt-in
packet pool's byte-identical replay guarantee."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind, PacketPool
from repro.sim.queues import DropTailQueue


# ---------------------------------------------------------------------------
# fast-path scheduling
# ---------------------------------------------------------------------------


def test_schedule_fast_runs_and_returns_nothing(sim):
    fired = []
    assert sim.schedule_fast(1.0, fired.append, "x") is None
    sim.run()
    assert fired == ["x"]
    assert sim.now == 1.0


def test_schedule_at_fast_rejects_past_times(sim):
    sim.schedule_fast(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at_fast(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_fast(-0.1, lambda: None)


def test_same_timestamp_ordering_mixes_fast_and_handle_paths(sim):
    """Insertion order decides ties regardless of which tier scheduled."""
    order = []
    sim.schedule(1.0, order.append, "handle-0")
    sim.schedule_fast(1.0, order.append, "fast-1")
    sim.schedule(1.0, order.append, "handle-2")
    sim.schedule_at_fast(1.0, order.append, "fast-3")
    sim.schedule_at(1.0, order.append, "handle-4")
    sim.run()
    assert order == ["handle-0", "fast-1", "handle-2", "fast-3", "handle-4"]


def test_step_executes_fast_path_events(sim):
    fired = []
    sim.schedule_fast(1.0, fired.append, "a")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is False


def test_peek_time_sees_fast_path_events(sim):
    sim.schedule_fast(2.5, lambda: None)
    assert sim.peek_time() == 2.5


# ---------------------------------------------------------------------------
# reschedule (handle reuse)
# ---------------------------------------------------------------------------


def test_reschedule_reuses_the_same_handle_object(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "first")
    sim.run()
    again = sim.reschedule(1.0, fired.append, handle, "second")
    assert again is handle
    assert handle.time == 2.0
    sim.run()
    assert fired == ["first", "second"]


def test_reschedule_revives_a_cancelled_consumed_handle(sim):
    """stop()-style cancellation after firing must not poison reuse."""
    fired = []
    handle = sim.schedule(1.0, fired.append, 1)
    sim.run()
    handle.cancel()  # its entry is already consumed; flag is stale
    sim.reschedule(1.0, fired.append, handle, 2)
    sim.run()
    assert fired == [1, 2]


def test_periodic_task_fires_every_interval(sim):
    times = []
    task = sim.every(1.0, lambda: times.append(sim.now))
    sim.run(until=4.5)
    assert times == [1.0, 2.0, 3.0, 4.0]
    task.stop()
    sim.run(until=10.0)
    assert times == [1.0, 2.0, 3.0, 4.0]


def test_periodic_task_stop_from_inside_its_own_callback(sim):
    """stop() racing _fire: stopping mid-callback must not re-arm."""
    fired = []

    def tick():
        fired.append(sim.now)
        task.stop()

    task = sim.every(1.0, tick)
    sim.run(until=10.0)
    assert fired == [1.0]
    assert task.stopped
    assert sim.pending() == 0


def test_periodic_task_stop_then_unrelated_events_continue(sim):
    fired = []
    task = sim.every(1.0, lambda: fired.append("tick"))
    sim.schedule(3.5, fired.append, "other")
    sim.run(until=1.5)
    task.stop()
    sim.run(until=5.0)
    assert fired == ["tick", "other"]


# ---------------------------------------------------------------------------
# bounded runs: cancelled-head hygiene, step interleaving
# ---------------------------------------------------------------------------


def test_run_until_drains_cancelled_heads_beyond_horizon(sim):
    """Stale cancelled entries must not pile up across bounded runs."""
    handles = [sim.schedule(10.0 + i, lambda: None) for i in range(50)]
    for handle in handles:
        handle.cancel()
    sim.run(until=1.0)
    assert sim.pending() == 0
    assert sim.now == 1.0


def test_repeated_bounded_runs_do_not_accumulate_stale_entries(sim):
    for round_no in range(20):
        handle = sim.schedule(1000.0, lambda: None)
        handle.cancel()
        sim.run(until=float(round_no + 1))
        assert sim.pending() == 0


def test_step_interleaved_with_bounded_run(sim):
    order = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.schedule_fast(t, order.append, t)
    sim.run(until=2.0)
    assert order == [1.0, 2.0]
    assert sim.now == 2.0
    assert sim.step() is True  # executes the t=3 event past the old horizon
    assert order == [1.0, 2.0, 3.0]
    assert sim.now == 3.0
    sim.run(until=10.0)
    assert order == [1.0, 2.0, 3.0, 4.0]
    assert sim.now == 10.0


def test_run_not_reentrant_still_enforced(sim):
    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule_fast(1.0, nested)
    sim.run()


# ---------------------------------------------------------------------------
# link datapath: rebindable fast paths, single event per hop
# ---------------------------------------------------------------------------


class _Sink(Node):
    def __init__(self, name="B"):
        super().__init__(name)
        self.received = []

    def receive(self, packet, link):
        self.received.append((packet, link.sim.now))


def _link(sim, sink, bw=100.0, prop=0.01, capacity=10):
    return Link(sim, "A->B", "A", sink, bw, prop, DropTailQueue(capacity))


def test_link_send_rebinds_on_arrival_tap(sim):
    sink = _Sink()
    link = _link(sim, sink)
    assert link.send.__func__ is Link._send_fast
    link.add_arrival_tap(lambda packet, now: None)
    assert link.send.__func__ is Link._send_tapped


def test_link_delivery_rebinds_on_delivery_tap(sim):
    sink = _Sink()
    link = _link(sim, sink)
    seen = []
    link.add_delivery_tap(lambda packet, now: seen.append(packet.pid))
    link.send(Packet.data(1, "A", "B", seq=0, now=0.0, sim=sim))
    sim.run()
    assert len(sink.received) == 1
    assert seen == [sink.received[0][0].pid]


def test_link_consuming_arrival_tap_blocks_packet(sim):
    sink = _Sink()
    link = _link(sim, sink)
    link.add_arrival_tap(lambda packet, now: packet.seq == 0)
    assert link.send(Packet.data(1, "A", "B", seq=0, now=0.0, sim=sim)) is False
    assert link.send(Packet.data(1, "A", "B", seq=1, now=0.0, sim=sim)) is True
    sim.run()
    assert [p.seq for p, _ in sink.received] == [1]


def test_link_one_event_per_data_packet_hop(sim):
    """A back-to-back burst costs one delivery event per packet plus one
    transmitter wakeup per serialization gap — not two events per hop."""
    sink = _Sink()
    link = _link(sim, sink, bw=100.0, prop=0.0, capacity=100)
    n = 10
    for i in range(n):
        link.send(Packet.data(1, "A", "B", seq=i, now=0.0, sim=sim))
    sim.run()
    assert len(sink.received) == n
    # n deliveries + (n - 1) wakeups (the first packet transmits inline).
    assert sim.events_executed == 2 * n - 1


def test_link_busy_property_tracks_serialization(sim):
    sink = _Sink()
    link = _link(sim, sink, bw=10.0, prop=0.0)
    assert link.busy is False
    link.send(Packet.data(1, "A", "B", seq=0, now=0.0, sim=sim))
    assert link.busy is True  # serializing for 0.1 s
    sim.run()
    assert link.busy is False
    assert link.busy_time == pytest.approx(0.1)


def test_link_same_instant_send_races_wakeup(sim):
    """A send scheduled at exactly the transmitter-free instant may run
    before the pending wakeup; delivery order must stay FIFO."""
    sink = _Sink()
    link = _link(sim, sink, bw=10.0, prop=0.0, capacity=10)

    def send(seq):
        link.send(Packet.data(1, "A", "B", seq=seq, now=sim.now, sim=sim))

    send(0)  # transmits 0.0 - 0.1
    send(1)  # queued; wakeup armed at 0.1
    sim.schedule_fast(0.1, send, 2)  # fires before the wakeup (earlier seq)
    sim.run()
    assert [p.seq for p, _ in sink.received] == [0, 1, 2]
    assert [t for _, t in sink.received] == pytest.approx([0.1, 0.2, 0.3])


def test_link_markers_keep_fifo_position_and_zero_time(sim):
    sink = _Sink()
    link = _link(sim, sink, bw=10.0, prop=0.0, capacity=10)
    link.send(Packet.data(1, "A", "B", seq=0, now=0.0, sim=sim))
    link.send(Packet.marker(1, "A", "B", label=1.0, now=0.0, sim=sim))
    link.send(Packet.data(1, "A", "B", seq=1, now=0.0, sim=sim))
    sim.run()
    kinds = [p.kind for p, _ in sink.received]
    times = [t for _, t in sink.received]
    assert kinds == [PacketKind.DATA, PacketKind.MARKER, PacketKind.DATA]
    assert times == pytest.approx([0.1, 0.1, 0.2])


# ---------------------------------------------------------------------------
# packet pool
# ---------------------------------------------------------------------------


def test_pool_acquire_reinitializes_every_field(sim):
    pool = PacketPool()
    packet = Packet.data(7, "A", "B", seq=3, now=1.0, sim=sim)
    packet.ecn = True
    packet.micro_id = 9
    packet.feedback_from = "L1"
    pool.release(packet)
    sim.packet_pool = pool
    recycled = Packet.data(8, "C", "D", seq=0, now=2.0, sim=sim)
    assert recycled is packet  # same object, fully reset
    assert recycled.flow_id == 8
    assert recycled.ecn is False
    assert recycled.micro_id == 0
    assert recycled.feedback_from is None
    assert recycled.origin_edge is None
    assert recycled.created_at == 2.0


def test_pool_pids_match_fresh_allocation(sim):
    sim.packet_pool = PacketPool()
    first = Packet.data(1, "A", "B", seq=0, now=0.0, sim=sim)
    pid = first.pid
    sim.packet_pool.release(first)
    second = Packet.data(1, "A", "B", seq=1, now=0.0, sim=sim)
    assert second.pid == pid + 1


def test_pool_caps_free_list_size():
    pool = PacketPool(max_size=2)
    sim = Simulator()
    for i in range(5):
        pool.release(Packet.data(1, "A", "B", seq=i, now=0.0, sim=sim))
    assert len(pool) == 2
    assert pool.released == 5


def test_pool_rejects_nonpositive_max_size():
    with pytest.raises(ValueError):
        PacketPool(max_size=0)


def _chain_fingerprint(packet_pool):
    from repro.experiments.builder import CloudBuilder
    from repro.experiments.scenarios import WEIGHTS_41, topology1_flows
    from repro.experiments.topospec import TopologySpec

    builder = CloudBuilder(
        TopologySpec.chain(4), scheme="corelite", seed=3, packet_pool=packet_pool
    )
    builder.add_flows(topology1_flows(WEIGHTS_41, {}))
    cloud = builder.build()
    result = cloud.run(until=12.0)
    fingerprint = []
    for flow_id, record in sorted(result.flows.items()):
        fingerprint.append(
            (
                flow_id,
                record.delivered,
                record.losses,
                tuple(record.rate_series.values),
                tuple(record.throughput_series.values),
                tuple(record.cumulative_series.values),
            )
        )
    return fingerprint, cloud.sim._next_pid, cloud.sim.events_executed, cloud


def test_pool_replay_is_byte_identical():
    """The figure-level outputs, packet-id counter, and event count must
    not change when pooling is enabled — the pool recycles objects, never
    semantics."""
    plain = _chain_fingerprint(packet_pool=False)
    pooled = _chain_fingerprint(packet_pool=True)
    assert pooled[0] == plain[0]
    assert pooled[1] == plain[1]
    assert pooled[2] == plain[2]
    pool = pooled[3].sim.packet_pool
    assert pool is not None and pool.reused > 0  # the pool actually engaged


def test_pool_replay_csfq_scheme():
    from repro.experiments.builder import CloudBuilder
    from repro.experiments.topospec import FlowPathSpec, TopologySpec

    def run(packet_pool):
        builder = CloudBuilder(
            TopologySpec.chain(2), scheme="csfq", seed=1, packet_pool=packet_pool
        )
        builder.add_flow(FlowPathSpec(1, weight=2.0, ingress_core="C1", egress_core="C2"))
        builder.add_flow(FlowPathSpec(2, weight=1.0, ingress_core="C1", egress_core="C2"))
        cloud = builder.build()
        result = cloud.run(until=12.0)
        return {
            flow_id: (record.delivered, record.losses)
            for flow_id, record in result.flows.items()
        }, cloud.sim._next_pid

    assert run(True) == run(False)


# ---------------------------------------------------------------------------
# per-simulation packet ids (no global-counter fallback)
# ---------------------------------------------------------------------------


def test_cloud_run_never_touches_global_packet_counter(monkeypatch):
    """Every component must pass ``sim=``: a cloud run may not advance the
    process-global fallback id counter even once."""
    from repro.experiments.builder import CloudBuilder
    from repro.experiments.topospec import FlowPathSpec, TopologySpec
    from repro.sim import packet as packet_mod

    class _Tripwire:
        def __init__(self):
            self.calls = 0

        def __next__(self):
            self.calls += 1
            return 10**9 + self.calls

    tripwire = _Tripwire()
    monkeypatch.setattr(packet_mod, "_packet_ids", tripwire)

    for scheme in ("corelite", "csfq"):
        builder = CloudBuilder(TopologySpec.chain(2), scheme=scheme, seed=0)
        builder.add_flow(FlowPathSpec(1, weight=1.0, ingress_core="C1", egress_core="C2"))
        builder.add_flow(FlowPathSpec(2, weight=3.0, ingress_core="C1", egress_core="C2"))
        cloud = builder.build()
        result = cloud.run(until=8.0)
        assert sum(r.delivered for r in result.flows.values()) > 0

    assert tripwire.calls == 0


# ---------------------------------------------------------------------------
# calendar timer tier
# ---------------------------------------------------------------------------


def _scrambled_times(n=600):
    """Deterministic non-monotonic near-future timestamps (no RNG: the
    engine's ordering guarantee must not depend on one)."""
    times = []
    t = 0.0
    for _ in range(n):
        t = (t + 0.0137) % 1.9
        times.append(round(t + 0.001, 6))
    return times


def test_calendar_engages_above_density_threshold():
    sim = Simulator()
    order = []
    # Prime the pending population past _CAL_MIN_EVENTS so near-future
    # inserts start landing in the ring.
    for i in range(300):
        sim.schedule_fast(5.0 + i * 1e-4, order.append, ("prime", i))
    for i, t in enumerate(_scrambled_times()):
        sim.schedule_at_fast(t, order.append, (t, i))
    assert sim._cal_count > 0
    sim.run(until=10.0)
    fired = [entry for entry in order if entry[0] != "prime"]
    assert fired == sorted(fired)  # global (time, insertion-seq) order
    assert sim.events_executed == 900


def test_calendar_off_forces_pure_heap():
    sim = Simulator(calendar=False)
    for _ in range(300):
        sim.schedule_fast(5.0, lambda: None)
    for _ in range(300):
        sim.schedule_fast(0.001, lambda: None)
    assert sim._cal_count == 0
    sim.run(until=10.0)
    assert sim.events_executed == 600


def test_calendar_and_heap_fire_identically():
    """The calendar is pure placement: the exact firing sequence (and the
    event count) must match the single-heap engine."""

    def drive(calendar):
        sim = Simulator(calendar=calendar)
        order = []
        for i in range(280):
            sim.schedule_fast(3.0 + (i % 7) * 0.25, order.append, ("far", i))
        for i, t in enumerate(_scrambled_times()):
            sim.schedule_at_fast(t, order.append, ("near", i, t))
        sim.run(until=10.0)
        return order, sim.events_executed

    assert drive(True) == drive(False)


def test_calendar_same_timestamp_ties_follow_scheduling_order():
    def drive(calendar):
        sim = Simulator(calendar=calendar)
        order = []
        for i in range(280):
            sim.schedule_fast(2.0, order.append, ("ballast", i))
        for i in range(40):
            # Alternate the fast and handle paths at one shared timestamp:
            # both tiers draw from the same sequence counter.
            if i % 2:
                sim.schedule_at_fast(1.0, order.append, ("fast", i))
            else:
                sim.schedule_at(1.0, order.append, ("handle", i))
        sim.run(until=3.0)
        return order

    on = drive(True)
    assert on == drive(False)
    ties = [entry for entry in on if entry[0] != "ballast"]
    assert [entry[1] for entry in ties] == list(range(40))


def test_calendar_ring_wrap_reuses_slots():
    """A reschedule chain crossing the ring horizon twice: exhausted
    buckets must be recycled, not mistaken for live future ones."""
    sim = Simulator()
    for _ in range(280):
        sim.schedule_fast(20.0, lambda: None)  # ballast keeps density up
    state = {"count": 0}

    def tick():
        state["count"] += 1
        if state["count"] < 1200:
            sim.schedule_fast(0.004, tick)

    sim.schedule_fast(0.004, tick)  # 1200 x 4 ms = 4.8 s ~ 2.3 ring spans
    sim.run(until=21.0)
    assert state["count"] == 1200
    assert sim.events_executed == 280 + 1200


def test_periodic_task_first_at_pins_the_grid():
    sim = Simulator()
    fires = []
    sim.every(0.1, lambda: fires.append(sim.now), first_at=0.35)
    sim.run(until=1.0)
    assert fires[0] == pytest.approx(0.35)
    assert len(fires) == 7  # 0.35, 0.45, ..., 0.95


# ---------------------------------------------------------------------------
# core epoch-timer parking
# ---------------------------------------------------------------------------


def test_idle_core_links_park_their_epoch_timers():
    from repro.experiments.builder import CloudBuilder
    from repro.experiments.topospec import FlowPathSpec, TopologySpec

    builder = CloudBuilder(TopologySpec.chain(2), scheme="corelite", seed=0)
    builder.add_flow(FlowPathSpec(1, weight=1.0, ingress_core="C1", egress_core="C2"))
    builder.add_flow(FlowPathSpec(2, weight=2.0, ingress_core="C1", egress_core="C2"))
    cloud = builder.build()
    result = cloud.run(until=10.0)
    assert sum(r.delivered for r in result.flows.values()) > 0
    parked = []
    for name in cloud.core_names:
        router = cloud.core_router(name)
        for link_name in router.enabled_links():
            parked.append(router.machinery_for(link_name).parked)
    # The uncongested access links (egress data, reverse feedback paths)
    # go idle and pool their timers; a congested core link must not.
    assert any(parked)


def test_selective_fold_epoch_replays_wav_exactly():
    import random

    from repro.core.config import CoreliteConfig
    from repro.core.selective_feedback import SelectiveFeedback

    config = CoreliteConfig()
    live = SelectiveFeedback(config, random.Random(1), lambda *a: None)
    parked = SelectiveFeedback(config, random.Random(1), lambda *a: None)
    counts = [3, 0, 0, 5, 1, 0]
    now = 0.0
    for count in counts:
        for i in range(count):
            live.observe(7, "E", 4.0 + i, now)
            parked.observe(7, "E", 4.0 + i, now)  # markers still traverse
        live.on_epoch(0, now)  # uncongested boundary, fired live
        now += 0.1
    for count in counts:  # the parked side replays the boundaries at once
        parked.fold_epoch(count)
    assert parked.wav == live.wav  # bit-identical, not approximately
    assert parked.rav == live.rav
    assert parked._epoch_marker_count == live._epoch_marker_count == 0
    assert parked.pw == live.pw == 0.0


# ---------------------------------------------------------------------------
# flow-scale replay pins (PR 5 acceptance)
# ---------------------------------------------------------------------------


def _flow_scaling_fingerprint(*, packet_pool, calendar):
    from repro.perf import _flow_scaling_cloud

    cloud = _flow_scaling_cloud(
        "corelite", 512, packet_pool=packet_pool, calendar=calendar
    )
    result = cloud.run(until=4.0, sample_interval=1.0)
    flows = tuple(
        (
            fid,
            rec.delivered,
            rec.losses,
            tuple(rec.rate_series.values),
            tuple(rec.throughput_series.values),
        )
        for fid, rec in sorted(result.flows.items())
    )
    queues = tuple(
        (name, tuple(sorted(link.queue.stats.as_dict().items())))
        for name, link in sorted(cloud.topology.links.items())
    )
    return flows, queues, cloud.sim._next_pid, cloud.sim.events_executed


def test_flow_scale_replay_byte_identical_across_optimizations():
    """512 flows: figure-level outputs, every queue's counters, the packet
    id counter and the executed-event count must not move when the packet
    pool or the calendar tier is toggled."""
    base = _flow_scaling_fingerprint(packet_pool=False, calendar=True)
    assert _flow_scaling_fingerprint(packet_pool=True, calendar=True) == base
    assert _flow_scaling_fingerprint(packet_pool=False, calendar=False) == base
