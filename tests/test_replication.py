"""Tests for the seed-replication helper, plus an actual multi-seed
stability check of the core result."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork
from repro.experiments.replication import replicate
from repro.experiments.scenarios import startup_flows
from repro.fairness.metrics import weighted_jain_index


class TestReplicateMechanics:
    def test_summarizes_each_metric(self):
        summaries = replicate(lambda seed: {"x": seed, "y": 2.0}, seeds=[1, 2, 3])
        assert summaries["x"].mean == pytest.approx(2.0)
        assert summaries["x"].lo == 1.0 and summaries["x"].hi == 3.0
        assert summaries["y"].stdev == 0.0
        assert summaries["y"].relative_spread == 0.0

    def test_single_seed_has_zero_stdev(self):
        summaries = replicate(lambda seed: {"x": 5.0}, seeds=[7])
        assert summaries["x"].stdev == 0.0

    def test_inconsistent_metrics_rejected(self):
        def run(seed):
            return {"x": 1.0} if seed == 1 else {"y": 1.0}

        with pytest.raises(ConfigurationError):
            replicate(run, seeds=[1, 2])

    def test_no_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(lambda s: {"x": 1.0}, seeds=[])

    def test_empty_metrics_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(lambda s: {}, seeds=[1])


class TestCrossSeedStability:
    def test_weighted_fairness_is_stable_across_seeds(self):
        """The headline result is not a seed artifact: weighted Jain stays
        above 0.99 and drops stay small for several seeds."""

        def run(seed):
            net = CoreliteNetwork.single_bottleneck(seed=seed)
            net.add_flows(startup_flows(6))
            result = net.run(until=60.0)
            rates = result.mean_rates((45.0, 60.0))
            weights = result.weights()
            ids = sorted(rates)
            return {
                "weighted_jain": weighted_jain_index(
                    [rates[f] for f in ids], [weights[f] for f in ids]
                ),
                "drops": result.total_drops,
            }

        summaries = replicate(run, seeds=[0, 1, 2, 3])
        assert summaries["weighted_jain"].lo > 0.99
        assert summaries["drops"].hi < 100
        # and it is genuinely stochastic: different seeds, different runs
        assert len(set(summaries["weighted_jain"].values)) > 1
