"""Tests for delay tracking, standalone and end-to-end."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork, FlowSpec
from repro.sim.delay import DelayTracker


class TestDelayTracker:
    def test_running_statistics(self):
        t = DelayTracker()
        for d in (0.1, 0.2, 0.3):
            t.record(d)
        assert t.count == 3
        assert t.mean == pytest.approx(0.2)
        assert t.min == pytest.approx(0.1)
        assert t.max == pytest.approx(0.3)
        assert t.stdev == pytest.approx(0.0816, abs=0.001)

    def test_empty_summary(self):
        s = DelayTracker().summary()
        assert s["count"] == 0
        assert s["mean"] == 0.0
        assert s["p95"] is None

    def test_percentiles_from_reservoir(self):
        t = DelayTracker(reservoir=1000)
        for i in range(1000):
            t.record(i / 1000.0)
        assert t.percentile(0.5) == pytest.approx(0.5, abs=0.05)
        assert t.percentile(0.95) == pytest.approx(0.95, abs=0.05)

    def test_reservoir_stays_bounded_and_representative(self):
        t = DelayTracker(reservoir=100, seed=1)
        for i in range(10_000):
            t.record(i / 10_000.0)
        assert len(t._reservoir) == 100
        assert t.percentile(0.5) == pytest.approx(0.5, abs=0.15)

    def test_zero_reservoir_disables_percentiles(self):
        t = DelayTracker(reservoir=0)
        t.record(0.1)
        assert t.percentile(0.5) is None
        assert t.mean == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DelayTracker(reservoir=-1)
        t = DelayTracker()
        with pytest.raises(ConfigurationError):
            t.record(-0.1)
        with pytest.raises(ConfigurationError):
            t.percentile(1.5)


class TestEndToEndDelay:
    def test_corelite_keeps_delay_near_qthresh_not_buffer(self):
        """Incipient-congestion feedback keeps the standing queue near
        qthresh (8 pkt), so one-way delay sits far below the
        full-buffer (40 pkt) worst case."""
        net = CoreliteNetwork.single_bottleneck(seed=0)
        for fid, weight in ((1, 1.0), (2, 1.0), (3, 2.0)):
            net.add_flow(FlowSpec(flow_id=fid, weight=weight))
        res = net.run(until=80.0)
        # propagation = 3 * 40 ms = 120 ms; full 40-pkt buffer would add
        # another 80 ms.  Expect mean delay well under that worst case.
        summary = res.flows[1].delay
        assert summary["count"] > 1000
        assert 0.120 <= summary["mean"] < 0.190
        assert summary["p95"] < 0.25

    def test_delay_scales_with_hop_count(self):
        net = CoreliteNetwork(num_cores=3, seed=0)
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C3"))
        net.add_flow(FlowSpec(flow_id=2, ingress_core="C1", egress_core="C2"))
        net.add_flow(FlowSpec(flow_id=3, ingress_core="C2", egress_core="C3"))
        res = net.run(until=60.0)
        long_path = res.flows[1].delay["mean"]
        short_path = res.flows[2].delay["mean"]
        assert long_path > short_path + 0.035  # one more 40 ms hop
