"""Tests for the consolidated reproduction report."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.validation import CheckResult, ReproReport, build_report


class TestReproReport:
    def test_add_and_counts(self):
        report = ReproReport()
        report.add("X", "claim", "measured", True)
        report.add("Y", "claim2", "measured2", False)
        assert report.passed == 1
        assert not report.all_passed
        assert len(report.checks) == 2

    def test_markdown_rendering(self):
        report = ReproReport()
        report.add("FIG1", "something holds", "it did", True)
        report.add("FIG2", "something else", "it did not", False)
        md = report.to_markdown()
        assert md.startswith("# Corelite reproduction report")
        assert "1/2 paper claims verified" in md
        assert "| FIG1 | something holds | it did | yes |" in md
        assert "**NO**" in md

    def test_empty_report_passes_vacuously(self):
        report = ReproReport()
        assert report.all_passed
        assert "0/0" in report.to_markdown()


def test_build_report_validation():
    with pytest.raises(ConfigurationError):
        build_report(scale=0.0)
    with pytest.raises(ConfigurationError):
        build_report(duration=10.0)


def test_checkresult_fields():
    c = CheckResult("E", "claim", "meas", True)
    assert (c.experiment, c.claim, c.measured, c.passed) == ("E", "claim", "meas", True)
