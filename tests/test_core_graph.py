"""Tests for arbitrary core graphs (beyond the paper's chain)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.network import CoreliteNetwork, FlowSpec
from repro.fairness.metrics import weighted_jain_index


def star_links(capacity=500.0, delay=0.02):
    """Hub-and-spoke: H in the middle, A/B/C around it."""
    return [
        ("H", "A", capacity, delay),
        ("H", "B", capacity, delay),
        ("H", "C", capacity, delay),
    ]


class TestConstruction:
    def test_core_names_derived_from_edges(self):
        net = CoreliteNetwork.from_core_graph(star_links())
        assert set(net.core_names) == {"H", "A", "B", "C"}

    def test_links_built_duplex(self):
        net = CoreliteNetwork.from_core_graph(star_links())
        assert "H->A" in net.topology.links
        assert "A->H" in net.topology.links

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreliteNetwork.from_core_graph([])

    def test_ring_routing_takes_shortest_arc(self):
        ring = [
            ("C1", "C2", 500.0, 0.01),
            ("C2", "C3", 500.0, 0.01),
            ("C3", "C4", 500.0, 0.01),
            ("C4", "C1", 500.0, 0.01),
        ]
        net = CoreliteNetwork.from_core_graph(ring)
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C2"))
        net.finalize()
        path = net.flow_path_links(1)
        # direct arc, not the long way around
        assert "C1->C2" in path
        assert "C1->C4" not in path


class TestFairnessOnAStar:
    def test_weighted_fairness_through_a_hub(self):
        """Three flows cross the hub toward the same spoke: the shared
        H->C link is the bottleneck and is split by weight."""
        net = CoreliteNetwork.from_core_graph(star_links(), seed=0)
        net.add_flow(FlowSpec(flow_id=1, weight=1.0, ingress_core="A", egress_core="C"))
        net.add_flow(FlowSpec(flow_id=2, weight=1.0, ingress_core="B", egress_core="C"))
        net.add_flow(FlowSpec(flow_id=3, weight=2.0, ingress_core="A", egress_core="C"))
        res = net.run(until=120.0)
        rates = res.mean_rates((90.0, 120.0))
        expected = res.expected_rates(at_time=100.0)
        for fid, exp in expected.items():
            assert rates[fid] == pytest.approx(exp, rel=0.2), (fid, rates[fid], exp)
        wj = weighted_jain_index(
            [rates[f] for f in sorted(rates)],
            [res.flows[f].weight for f in sorted(rates)],
        )
        assert wj > 0.97

    def test_cross_traffic_on_disjoint_spokes_does_not_interfere(self):
        net = CoreliteNetwork.from_core_graph(star_links(), seed=0)
        net.add_flow(FlowSpec(flow_id=1, ingress_core="A", egress_core="B"))
        net.add_flow(FlowSpec(flow_id=2, ingress_core="B", egress_core="C"))
        res = net.run(until=150.0)
        rates = res.mean_rates((120.0, 150.0))
        expected = res.expected_rates(at_time=130.0)
        # A->B uses H->B; B->C uses H->C: they share no congested link,
        # so both converge toward the full 500 pkt/s independently.
        for fid in (1, 2):
            assert expected[fid] == pytest.approx(500.0)
            assert rates[fid] > 350.0
