"""Unit tests for the FRED baseline queue."""

import random

import pytest

from repro.aqm.fred import FredQueue
from repro.errors import ConfigurationError
from repro.sim.packet import Packet


def data(flow=1, seq=0):
    return Packet.data(flow, "A", "B", seq=seq, now=0.0)


def test_tracks_only_buffered_flows():
    q = FredQueue(capacity=40)
    q.push(data(flow=1), 0.0)
    q.push(data(flow=2), 0.0)
    assert q.active_flows == 2
    q.pop(0.0)
    q.pop(0.0)
    assert q.active_flows == 0


def test_per_flow_backlog_counts():
    q = FredQueue(capacity=40)
    for i in range(3):
        q.push(data(flow=1, seq=i), 0.0)
    q.push(data(flow=2), 0.0)
    assert q.flow_backlog(1) == 3
    assert q.flow_backlog(2) == 1
    q.pop(0.0)
    assert q.flow_backlog(1) == 2


def test_per_flow_cap_drops_hog():
    q = FredQueue(capacity=40, min_thresh=5, max_thresh=15)
    # one flow tries to buffer far beyond maxq = 7.5
    outcomes = [q.push(data(flow=1, seq=i), 0.0) for i in range(12)]
    assert not all(outcomes)
    assert q.per_flow_cap_drops > 0
    assert q.flow_backlog(1) <= 8
    assert q.strikes(1) > 0


def test_fragile_flow_protected_while_hog_is_dropped():
    q = FredQueue(capacity=40, min_thresh=5, max_thresh=15, avg_weight=0.2,
                  rng=random.Random(0))
    accepted_light = 0
    for i in range(60):
        q.push(data(flow=1, seq=i), 0.0)  # hog keeps pounding
        if i % 10 == 0:
            if q.push(data(flow=2, seq=i), 0.0):  # light flow, small backlog
                accepted_light += 1
            q.pop(0.0)  # drain a little
    # light flow stays under its allowance: never dropped
    assert accepted_light == 6


def test_strike_resets_when_flow_drains():
    q = FredQueue(capacity=40, min_thresh=5, max_thresh=15)
    for i in range(12):
        q.push(data(flow=1, seq=i), 0.0)
    assert q.strikes(1) > 0
    while q.pop(0.0) is not None:
        pass
    assert q.strikes(1) == 0  # state discarded with the last packet


def test_physical_capacity_enforced():
    q = FredQueue(capacity=5, min_thresh=2, max_thresh=5, minq=1)
    for flow in range(10):
        q.push(data(flow=flow), 0.0)
    assert q.occupancy <= 5


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        FredQueue(capacity=40, min_thresh=20, max_thresh=10)
    with pytest.raises(ConfigurationError):
        FredQueue(capacity=40, minq=0)
    with pytest.raises(ConfigurationError):
        FredQueue(capacity=40, max_prob=0.0)
