"""Shared test fixtures and helpers."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.sim.engine import Simulator
from repro.sim.node import Router
from repro.sim.packet import Packet
from repro.sim.topology import Topology


class CollectorNode(Router):
    """A router that records everything delivered to it."""

    def __init__(self, name: str, sim: Simulator) -> None:
        super().__init__(name)
        self.sim = sim
        self.received: List[Tuple[float, Packet]] = []

    def receive(self, packet: Packet, link) -> None:
        if packet.dst == self.name:
            self.received.append((self.sim.now, packet))
        else:
            self.forward(packet)

    @property
    def packets(self) -> List[Packet]:
        return [p for _, p in self.received]


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def line_topology(sim: Simulator):
    """A -> B -> C line with 500 pkt/s, 10 ms links; C collects."""
    topo = Topology(sim)
    a = Router("A")
    b = Router("B")
    c = CollectorNode("C", sim)
    for node in (a, b, c):
        topo.add_node(node)
    topo.add_duplex_link("A", "B", 500.0, 0.010)
    topo.add_duplex_link("B", "C", 500.0, 0.010)
    topo.build_routes()
    return topo, a, b, c


def data_packet(flow_id: int = 1, src: str = "A", dst: str = "C", seq: int = 0, now: float = 0.0):
    return Packet.data(flow_id, src, dst, seq=seq, now=now)
