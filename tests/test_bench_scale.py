"""Validation of the benchmark environment knobs (benchmarks/conftest.py).

``REPRO_BENCH_SCALE`` and ``REPRO_BENCH_WORKERS`` are parsed before any
simulation starts; a malformed value must fail fast with a message that
names the variable, not crash deep inside a run.
"""

import pytest

from benchmarks.conftest import bench_scale, bench_workers


class TestBenchScale:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 0.25
        assert bench_scale(default=1.0) == 1.0

    @pytest.mark.parametrize("raw,expected", [("1.0", 1.0), ("0.25", 0.25), ("2", 2.0)])
    def test_valid_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_BENCH_SCALE", raw)
        assert bench_scale() == expected

    @pytest.mark.parametrize("raw", ["fast", "", "1.0x", "0x10"])
    def test_non_numeric_rejected_with_named_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BENCH_SCALE", raw)
        with pytest.raises(pytest.UsageError, match="REPRO_BENCH_SCALE"):
            bench_scale()

    @pytest.mark.parametrize("raw", ["0", "-1", "-0.5", "nan", "inf", "-inf"])
    def test_non_positive_or_non_finite_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BENCH_SCALE", raw)
        with pytest.raises(pytest.UsageError, match="REPRO_BENCH_SCALE"):
            bench_scale()


class TestBenchWorkers:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        assert bench_workers() == 1
        assert bench_workers(default=4) == 4

    @pytest.mark.parametrize("raw,expected", [("1", 1), ("4", 4), ("16", 16)])
    def test_valid_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", raw)
        assert bench_workers() == expected

    @pytest.mark.parametrize("raw", ["two", "", "1.5", "0", "-2"])
    def test_invalid_rejected_with_named_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", raw)
        with pytest.raises(pytest.UsageError, match="REPRO_BENCH_WORKERS"):
            bench_workers()
