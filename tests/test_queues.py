"""Unit tests for FIFO queues and occupancy averaging."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


def data(seq=0):
    return Packet.data(1, "A", "B", seq=seq, now=0.0)


def marker():
    return Packet.marker(1, "A", "B", label=1.0, now=0.0)


def test_fifo_order():
    q = DropTailQueue(10)
    packets = [data(i) for i in range(3)]
    for p in packets:
        assert q.push(p, 0.0)
    assert [q.pop(0.0).seq for _ in range(3)] == [0, 1, 2]


def test_pop_empty_returns_none():
    q = DropTailQueue(10)
    assert q.pop(0.0) is None


def test_capacity_enforced():
    q = DropTailQueue(2)
    assert q.push(data(0), 0.0)
    assert q.push(data(1), 0.0)
    assert not q.push(data(2), 0.0)
    assert q.stats.dropped_data == 1
    assert q.occupancy == 2.0


def test_markers_do_not_consume_capacity():
    q = DropTailQueue(1)
    assert q.push(data(0), 0.0)
    for _ in range(5):
        assert q.push(marker(), 0.0)
    assert q.occupancy == 1.0
    assert len(q) == 6
    assert q.stats.enqueued_control == 5


def test_markers_keep_fifo_position():
    q = DropTailQueue(10)
    q.push(data(0), 0.0)
    q.push(marker(), 0.0)
    q.push(data(1), 0.0)
    kinds = [q.pop(0.0).kind.name for _ in range(3)]
    assert kinds == ["DATA", "MARKER", "DATA"]


def test_occupancy_decreases_on_pop():
    q = DropTailQueue(10)
    q.push(data(0), 0.0)
    q.push(data(1), 0.0)
    q.pop(0.0)
    assert q.occupancy == 1.0


def test_stats_counters():
    q = DropTailQueue(1)
    q.push(data(0), 0.0)
    q.push(data(1), 0.0)  # dropped
    q.pop(0.0)
    s = q.stats
    assert (s.enqueued_data, s.dequeued_data, s.dropped_data) == (1, 1, 1)
    assert s.peak_occupancy == 1.0


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigurationError):
        DropTailQueue(0)
    with pytest.raises(ConfigurationError):
        DropTailQueue(-3)


class TestTimeAverage:
    def test_empty_queue_average_is_zero(self):
        q = DropTailQueue(10)
        q.reset_window(0.0)
        assert q.time_average(1.0) == 0.0

    def test_constant_occupancy(self):
        q = DropTailQueue(10)
        q.reset_window(0.0)
        q.push(data(0), 0.0)
        q.push(data(1), 0.0)
        assert q.time_average(2.0) == pytest.approx(2.0)

    def test_step_occupancy_integrates(self):
        q = DropTailQueue(10)
        q.reset_window(0.0)
        q.push(data(0), 0.0)  # occupancy 1 during [0, 1)
        q.push(data(1), 1.0)  # occupancy 2 during [1, 2)
        # integral = 1*1 + 2*1 = 3 over span 2
        assert q.time_average(2.0) == pytest.approx(1.5)

    def test_pop_lowers_average(self):
        q = DropTailQueue(10)
        q.reset_window(0.0)
        q.push(data(0), 0.0)
        q.pop(1.0)  # occupancy 1 during [0,1), 0 during [1,2)
        assert q.time_average(2.0) == pytest.approx(0.5)

    def test_reset_window_starts_fresh(self):
        q = DropTailQueue(10)
        q.reset_window(0.0)
        q.push(data(0), 0.0)
        assert q.time_average(1.0) == pytest.approx(1.0)
        q.reset_window(1.0)
        q.pop(1.0)
        assert q.time_average(2.0) == pytest.approx(0.0)

    def test_markers_do_not_affect_average(self):
        q = DropTailQueue(10)
        q.reset_window(0.0)
        for _ in range(4):
            q.push(marker(), 0.0)
        assert q.time_average(1.0) == 0.0

    def test_average_at_window_start_is_current_occupancy(self):
        q = DropTailQueue(10)
        q.push(data(0), 0.0)
        q.reset_window(1.0)
        assert q.time_average(1.0) == pytest.approx(1.0)
