"""Unit and property tests for the weighted max-min allocator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FlowError
from repro.fairness.maxmin import (
    FlowDemand,
    weighted_maxmin,
    weighted_maxmin_with_minimums,
)


def test_single_link_equal_weights():
    alloc = weighted_maxmin(
        {"L": 100.0},
        [FlowDemand(1, 1.0, ("L",)), FlowDemand(2, 1.0, ("L",))],
    )
    assert alloc == {1: pytest.approx(50.0), 2: pytest.approx(50.0)}


def test_single_link_weighted_split():
    alloc = weighted_maxmin(
        {"L": 90.0},
        [FlowDemand(1, 1.0, ("L",)), FlowDemand(2, 2.0, ("L",))],
    )
    assert alloc[1] == pytest.approx(30.0)
    assert alloc[2] == pytest.approx(60.0)


def test_demand_limited_flow_frees_capacity():
    alloc = weighted_maxmin(
        {"L": 100.0},
        [FlowDemand(1, 1.0, ("L",), demand=10.0), FlowDemand(2, 1.0, ("L",))],
    )
    assert alloc[1] == pytest.approx(10.0)
    assert alloc[2] == pytest.approx(90.0)


def test_classic_parking_lot():
    # Long flow crosses both links; two short flows take one link each.
    alloc = weighted_maxmin(
        {"L1": 100.0, "L2": 100.0},
        [
            FlowDemand("long", 1.0, ("L1", "L2")),
            FlowDemand("s1", 1.0, ("L1",)),
            FlowDemand("s2", 1.0, ("L2",)),
        ],
    )
    assert alloc["long"] == pytest.approx(50.0)
    assert alloc["s1"] == pytest.approx(50.0)
    assert alloc["s2"] == pytest.approx(50.0)


def test_multi_bottleneck_second_level():
    # After the 10-capacity link freezes flow A at 5, flow B continues to
    # fill the 100-capacity link.
    alloc = weighted_maxmin(
        {"tight": 10.0, "wide": 100.0},
        [
            FlowDemand("A", 1.0, ("tight", "wide")),
            FlowDemand("a2", 1.0, ("tight",)),
            FlowDemand("B", 1.0, ("wide",)),
        ],
    )
    assert alloc["A"] == pytest.approx(5.0)
    assert alloc["a2"] == pytest.approx(5.0)
    assert alloc["B"] == pytest.approx(95.0)


def test_paper_topology1_expected_rates():
    """The §4.1 numbers: 25 pkt/s per unit weight with all 20 flows."""
    from repro.experiments.scenarios import PATH_ASSIGNMENT, WEIGHTS_41

    links = {"C1-C2": 500.0, "C2-C3": 500.0, "C3-C4": 500.0}
    segs = {("C1", "C2"): ("C1-C2",), ("C1", "C3"): ("C1-C2", "C2-C3"),
            ("C1", "C4"): ("C1-C2", "C2-C3", "C3-C4"),
            ("C2", "C3"): ("C2-C3",), ("C2", "C4"): ("C2-C3", "C3-C4"),
            ("C3", "C4"): ("C3-C4",)}
    flows = [
        FlowDemand(fid, WEIGHTS_41[fid], segs[PATH_ASSIGNMENT[fid]])
        for fid in PATH_ASSIGNMENT
    ]
    alloc = weighted_maxmin(links, flows)
    for fid, rate in alloc.items():
        assert rate / WEIGHTS_41[fid] == pytest.approx(25.0)

    # Without flows 1, 9, 10, 11, 16 the share rises to 33.33.
    absent = {1, 9, 10, 11, 16}
    alloc2 = weighted_maxmin(links, [f for f in flows if f.flow_id not in absent])
    for fid, rate in alloc2.items():
        assert rate / WEIGHTS_41[fid] == pytest.approx(100.0 / 3.0)


def test_flow_with_no_links_needs_finite_demand():
    with pytest.raises(FlowError):
        weighted_maxmin({}, [FlowDemand(1, 1.0, ())])
    alloc = weighted_maxmin({}, [FlowDemand(1, 1.0, (), demand=7.0)])
    assert alloc[1] == pytest.approx(7.0)


def test_unknown_link_rejected():
    with pytest.raises(FlowError):
        weighted_maxmin({"L": 1.0}, [FlowDemand(1, 1.0, ("nope",))])


def test_duplicate_flow_id_rejected():
    with pytest.raises(FlowError):
        weighted_maxmin(
            {"L": 1.0},
            [FlowDemand(1, 1.0, ("L",)), FlowDemand(1, 1.0, ("L",))],
        )


def test_negative_capacity_rejected():
    with pytest.raises(ConfigurationError):
        weighted_maxmin({"L": -1.0}, [FlowDemand(1, 1.0, ("L",))])


def test_invalid_weight_rejected():
    with pytest.raises(FlowError):
        FlowDemand(1, 0.0, ("L",))
    with pytest.raises(FlowError):
        FlowDemand(1, -2.0, ("L",))


def test_zero_capacity_link():
    alloc = weighted_maxmin({"L": 0.0}, [FlowDemand(1, 1.0, ("L",))])
    assert alloc[1] == 0.0


def test_links_accepts_list():
    f = FlowDemand(1, 1.0, ["L1", "L2"])
    assert f.links == ("L1", "L2")


class TestMinimumRateContracts:
    def test_minimums_are_honored_and_excess_is_weighted(self):
        alloc = weighted_maxmin_with_minimums(
            {"L": 100.0},
            [FlowDemand(1, 1.0, ("L",)), FlowDemand(2, 1.0, ("L",))],
            minimums={1: 40.0},
        )
        # 40 reserved; the remaining 60 splits 30/30.
        assert alloc[1] == pytest.approx(70.0)
        assert alloc[2] == pytest.approx(30.0)

    def test_infeasible_contracts_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_maxmin_with_minimums(
                {"L": 100.0},
                [FlowDemand(1, 1.0, ("L",))],
                minimums={1: 150.0},
            )

    def test_no_minimums_matches_plain_maxmin(self):
        flows = [FlowDemand(1, 1.0, ("L",)), FlowDemand(2, 3.0, ("L",))]
        assert weighted_maxmin_with_minimums({"L": 80.0}, flows, {}) == weighted_maxmin(
            {"L": 80.0}, flows
        )

    def test_negative_minimum_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_maxmin_with_minimums(
                {"L": 10.0}, [FlowDemand(1, 1.0, ("L",))], minimums={1: -1.0}
            )


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

link_names = st.sampled_from(["L1", "L2", "L3", "L4"])


@st.composite
def allocation_problems(draw):
    n_links = draw(st.integers(1, 4))
    links = {f"L{i}": draw(st.floats(1.0, 1000.0)) for i in range(n_links)}
    n_flows = draw(st.integers(1, 8))
    flows = []
    for fid in range(n_flows):
        n_path = draw(st.integers(1, n_links))
        path = tuple(draw(st.permutations(sorted(links)))[:n_path])
        weight = draw(st.floats(0.1, 10.0))
        demand = draw(st.one_of(st.just(math.inf), st.floats(0.1, 2000.0)))
        flows.append(FlowDemand(fid, weight, path, demand))
    return links, flows


@given(allocation_problems())
@settings(max_examples=60, deadline=None)
def test_allocation_is_feasible(problem):
    links, flows = problem
    alloc = weighted_maxmin(links, flows)
    # No link oversubscribed.
    for link, cap in links.items():
        load = sum(alloc[f.flow_id] for f in flows if link in f.links)
        assert load <= cap * (1 + 1e-6) + 1e-6
    # No flow exceeds its demand, no negative rates.
    for f in flows:
        assert -1e-9 <= alloc[f.flow_id] <= f.demand * (1 + 1e-9) + 1e-9


@given(allocation_problems())
@settings(max_examples=60, deadline=None)
def test_allocation_is_maxmin_fair(problem):
    """No flow can be raised: it is either demand-limited or crosses a
    saturated link on which it has a maximal normalized rate."""
    links, flows = problem
    alloc = weighted_maxmin(links, flows)
    load = {
        link: sum(alloc[f.flow_id] for f in flows if link in f.links) for link in links
    }
    for f in flows:
        rate = alloc[f.flow_id]
        if rate >= f.demand * (1 - 1e-6) - 1e-9:
            continue  # demand-limited
        blocking = []
        for link in f.links:
            if load[link] >= links[link] * (1 - 1e-6) - 1e-9:
                blocking.append(link)
        assert blocking, f"flow {f.flow_id} is not limited by demand or any link"
        # On at least one saturated link, f's normalized rate must be >=
        # (approximately) that of some other flow -- i.e. f is among the
        # top normalized rates there (max-min condition).
        norm = rate / f.weight
        ok = False
        for link in blocking:
            others = [
                alloc[g.flow_id] / g.weight
                for g in flows
                if link in g.links and g.flow_id != f.flow_id
            ]
            if not others or norm >= max(others) * (1 - 1e-6) - 1e-9:
                ok = True
                break
        assert ok, f"flow {f.flow_id} could be raised at others' expense"


@given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_single_link_allocation_proportional_to_weights(weights):
    flows = [FlowDemand(i, w, ("L",)) for i, w in enumerate(weights)]
    alloc = weighted_maxmin({"L": 100.0}, flows)
    total_w = sum(weights)
    for i, w in enumerate(weights):
        assert alloc[i] == pytest.approx(100.0 * w / total_w, rel=1e-6)
