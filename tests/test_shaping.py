"""Unit tests for the paced sender."""

import pytest

from repro.core.shaping import PacedSender
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    times = []
    sender = PacedSender(sim, rate=10.0, emit=lambda: times.append(sim.now))
    return sim, sender, times


def test_first_packet_is_immediate(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.01)
    assert times == [0.0]


def test_emission_interval_matches_rate(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.55)
    assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4, 0.5])


def test_stop_halts_emissions(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.25)
    sender.stop()
    sim.run(until=1.0)
    assert len(times) == 3
    assert not sender.running


def test_rate_increase_takes_effect_quickly(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.05)
    sender.set_rate(100.0)
    sim.run(until=0.2)
    # next emission at last_emit (0.0) + 1/100 already past -> fires now,
    # then every 10 ms
    assert times[1] == pytest.approx(0.05)
    assert times[2] == pytest.approx(0.06)


def test_rate_decrease_delays_next_emission(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.05)
    sender.set_rate(2.0)  # next at 0.0 + 0.5
    sim.run(until=1.01)
    assert times == pytest.approx([0.0, 0.5, 1.0])


def test_zero_rate_goes_dormant_and_wakes(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.05)
    sender.set_rate(0.0)
    sim.run(until=5.0)
    assert times == [0.0]
    sender.set_rate(10.0)
    sim.run(until=5.2)
    assert len(times) >= 2


def test_restart_after_stop(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.05)
    sender.stop()
    sim.run(until=1.0)
    sender.start()
    sim.run(until=1.05)
    assert times[-1] == pytest.approx(1.0)


def test_negative_rate_rejected(rig):
    sim, sender, _ = rig
    with pytest.raises(ConfigurationError):
        sender.set_rate(-1.0)
    with pytest.raises(ConfigurationError):
        PacedSender(sim, rate=-5.0, emit=lambda: None)


def test_packets_sent_counter(rig):
    sim, sender, times = rig
    sender.start()
    sim.run(until=0.35)
    assert sender.packets_sent == len(times) == 4


def test_emit_may_stop_sender_mid_callback():
    sim = Simulator()
    times = []

    def emit():
        times.append(sim.now)
        if len(times) == 2:
            sender.stop()

    sender = PacedSender(sim, rate=10.0, emit=emit)
    sender.start()
    sim.run(until=2.0)
    assert len(times) == 2
