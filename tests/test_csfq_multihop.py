"""CSFQ relabeling across multiple hops.

The SIGCOMM'98 design depends on relabeling: once a congested link trims
a flow to its fair share, the packet's label must reflect the *post-trim*
rate or downstream links would over-drop.  These tests verify the
mechanism end to end on a two-bottleneck chain.
"""

import pytest

from repro.experiments.network import CsfqNetwork, FlowSpec


class TestRelabelingAcrossHops:
    def test_labels_shrink_at_each_congested_hop(self):
        """A flow crossing two congested links arrives at its egress with
        labels bounded by the tighter fair share, not its ingress rate."""
        net = CsfqNetwork(num_cores=3, seed=0)
        # long flow across both links, plus cross traffic on each
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C3"))
        net.add_flow(FlowSpec(flow_id=2, ingress_core="C1", egress_core="C2"))
        net.add_flow(FlowSpec(flow_id=3, ingress_core="C2", egress_core="C3"))
        net.finalize()

        labels_at_egress = []
        egress_link = net.topology.links["C3->Eout1"]
        egress_link.add_delivery_tap(
            lambda p, t: labels_at_egress.append(p.label)
            if p.flow_id == 1 and p.size > 0 else None
        )
        for fid, spec in net.flows.items():
            net.sim.schedule_at(0.0, net.edges[spec.ingress_edge].start_flow, fid)
        net.sim.run(until=80.0)

        # steady state: flow 1's fair share is ~250 on each link; its
        # egress labels must be near/below that share, far below the
        # access capacity it could have been labeled with at ingress.
        steady = labels_at_egress[-500:]
        assert steady
        assert max(steady) < 400.0
        assert sum(steady) / len(steady) < 320.0

    def test_two_bottleneck_throughput_matches_maxmin(self):
        net = CsfqNetwork(num_cores=3, seed=0)
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C3"))
        net.add_flow(FlowSpec(flow_id=2, weight=2.0, ingress_core="C1",
                              egress_core="C2"))
        net.add_flow(FlowSpec(flow_id=3, weight=2.0, ingress_core="C2",
                              egress_core="C3"))
        res = net.run(until=120.0)
        tput = res.mean_throughputs((90.0, 120.0))
        expected = res.expected_rates(at_time=100.0)
        for fid, exp in expected.items():
            assert tput[fid] == pytest.approx(exp, rel=0.2), (fid, tput[fid], exp)

    def test_adaptive_sources_equalize_loss_rates(self):
        """With loss-driven sources the per-flow loss *counts* equalize
        regardless of hop count — each LIMD settles where its congestion
        signal rate matches its probe rate.  (The paper's §4.4 multi-hop
        loss penalty applies to the transient and to non-adaptive senders;
        this pins down the steady-state behaviour our model produces.)"""
        net = CsfqNetwork(num_cores=3, seed=0)
        net.add_flow(FlowSpec(flow_id=1, ingress_core="C1", egress_core="C3"))
        net.add_flow(FlowSpec(flow_id=2, ingress_core="C1", egress_core="C2"))
        net.add_flow(FlowSpec(flow_id=3, ingress_core="C2", egress_core="C3"))
        res = net.run(until=120.0)
        losses = [res.flows[f].losses for f in (1, 2, 3)]
        assert max(losses) < 1.3 * max(1, min(losses)), losses
